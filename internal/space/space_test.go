package space

import (
	"math/rand"
	"testing"
	"testing/quick"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
)

func swSpace(t *testing.T) *Space {
	t.Helper()
	k, err := apps.Get("S-W").Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return Identify(k)
}

// TestSWCardinality asserts the paper's Table 1 observation: the
// Smith-Waterman design space exceeds a thousand trillion points.
func TestSWCardinality(t *testing.T) {
	s := swSpace(t)
	if c := s.Cardinality(); c < 1e15 {
		t.Errorf("S-W cardinality = %.3g, paper says > 1e15", c)
	}
}

func TestIdentifyFactors(t *testing.T) {
	s := swSpace(t)
	kinds := map[FactorKind]int{}
	for i := range s.Params {
		kinds[s.Params[i].Kind]++
	}
	// S-W: 4 buffers (in_1, in_2, out_1, out_2), 3 counted loops.
	if kinds[FactorBitWidth] != 4 {
		t.Errorf("bitwidth factors = %d, want 4", kinds[FactorBitWidth])
	}
	if kinds[FactorTile] != 3 || kinds[FactorParallel] != 3 || kinds[FactorPipeline] != 3 {
		t.Errorf("loop factors = %v", kinds)
	}
	// Table 1 domains.
	bw := s.Param("in_1.bitwidth")
	if bw == nil || bw.Size() != 6 || bw.Enum[0] != 16 || bw.Enum[5] != 512 {
		t.Errorf("bitwidth domain = %+v", bw)
	}
	par := s.Param("L1.parallel")
	if par == nil || par.Min != 1 || par.Max != 127 {
		t.Errorf("L1.parallel domain = %+v", par)
	}
	task := s.Param("L0.parallel")
	if task == nil || task.Max != MaxTaskParallel {
		t.Errorf("task parallel domain = %+v", task)
	}
}

func TestOrdinalRoundTrip(t *testing.T) {
	s := swSpace(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := range s.Params {
			p := &s.Params[i]
			v := p.Random(rng)
			if p.ValueAt(p.Ordinal(v)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomPointValidates(t *testing.T) {
	s := swSpace(t)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		pt := s.RandomPoint(rng)
		if err := s.Validate(pt); err != nil {
			t.Fatalf("random point invalid: %v", err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	s := swSpace(t)
	rng := rand.New(rand.NewSource(9))
	pt := s.RandomPoint(rng)
	pt["L1.parallel"] = 100000
	if err := s.Validate(pt); err == nil {
		t.Error("out-of-domain value accepted")
	}
	delete(pt, "L1.parallel")
	if err := s.Validate(pt); err == nil {
		t.Error("missing parameter accepted")
	}
}

func TestSeeds(t *testing.T) {
	s := swSpace(t)
	perf := s.PerformanceSeed()
	if err := s.Validate(perf); err != nil {
		t.Fatalf("performance seed invalid: %v", err)
	}
	// Paper §4.3.2: pipeline all loops, parallel 32, bit-width 512.
	if perf["L1.parallel"] != 32 || perf["in_1.bitwidth"] != 512 || perf["L1.pipeline"] != PipeOnVal {
		t.Errorf("performance seed = %v", perf)
	}
	area := s.AreaSeed()
	if err := s.Validate(area); err != nil {
		t.Fatalf("area seed invalid: %v", err)
	}
	if area["L1.parallel"] != 1 || area["in_1.bitwidth"] != 16 || area["L1.pipeline"] != PipeOffVal {
		t.Errorf("area seed = %v", area)
	}
}

func TestDirectivesMapping(t *testing.T) {
	s := swSpace(t)
	pt := s.AreaSeed()
	pt["L1.parallel"] = 8
	pt["L1.tile"] = 4
	pt["L1.pipeline"] = PipeFlattenVal
	pt["in_1.bitwidth"] = 256
	d := s.Directives(pt)
	opt := d.Loops["L1"]
	if opt.Parallel != 8 || opt.Tile != 4 || opt.Pipeline != cir.PipeFlatten {
		t.Errorf("L1 directives = %+v", opt)
	}
	if d.BitWidths["in_1"] != 256 {
		t.Errorf("bitwidths = %v", d.BitWidths)
	}
}

func TestRestrict(t *testing.T) {
	s := swSpace(t)
	sub, err := Restrict(s, []Constraint{
		{Param: "L1.parallel", LoOrd: 0, HiOrd: 7},   // values 1..8
		{Param: "L0.pipeline", LoOrd: 1, HiOrd: 2},   // {on, flatten}
		{Param: "in_1.bitwidth", LoOrd: 3, HiOrd: 5}, // {128,256,512}
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := sub.Param("L1.parallel"); p.Min != 1 || p.Max != 8 {
		t.Errorf("restricted range = [%d,%d]", p.Min, p.Max)
	}
	if p := sub.Param("L0.pipeline"); p.Size() != 2 || p.Enum[0] != PipeOnVal {
		t.Errorf("restricted enum = %v", p.Enum)
	}
	if p := sub.Param("in_1.bitwidth"); p.Size() != 3 || p.Enum[0] != 128 {
		t.Errorf("restricted bitwidths = %v", p.Enum)
	}
	// Untouched params keep their domains.
	if p := sub.Param("L2.parallel"); p.Size() != s.Param("L2.parallel").Size() {
		t.Error("unconstrained parameter narrowed")
	}
	// Seeds clamp into the sub-box.
	area := sub.AreaSeed()
	if area["L0.pipeline"] != PipeOnVal {
		t.Errorf("area seed pipeline = %d, want clamped to on", area["L0.pipeline"])
	}
	if err := sub.Validate(area); err != nil {
		t.Errorf("area seed invalid in subspace: %v", err)
	}
	// Cardinality shrinks.
	if sub.Cardinality() >= s.Cardinality() {
		t.Error("restriction did not shrink the space")
	}
}

func TestRestrictEmptyDomain(t *testing.T) {
	s := swSpace(t)
	if _, err := Restrict(s, []Constraint{{Param: "L0.pipeline", LoOrd: 2, HiOrd: 1}}); err == nil {
		t.Error("empty restriction accepted")
	}
	// Intersection of two constraints on the same param.
	sub, err := Restrict(s, []Constraint{
		{Param: "L1.parallel", LoOrd: 0, HiOrd: 63},
		{Param: "L1.parallel", LoOrd: 16, HiOrd: 126},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := sub.Param("L1.parallel"); p.Min != 17 || p.Max != 64 {
		t.Errorf("intersected range = [%d,%d]", p.Min, p.Max)
	}
}

func TestClamp(t *testing.T) {
	s := swSpace(t)
	bw := s.Param("in_1.bitwidth")
	if bw.Clamp(100) != 128 {
		t.Errorf("Clamp(100) = %d", bw.Clamp(100))
	}
	par := s.Param("L1.parallel")
	if par.Clamp(0) != 1 || par.Clamp(9999) != 127 || par.Clamp(50) != 50 {
		t.Error("range clamp broken")
	}
}
