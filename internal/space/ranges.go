package space

import (
	"s2fa/internal/cir"
	"s2fa/internal/fpga"
)

// RestrictFromRanges returns a copy of s with range-dominated interface
// bit-width values removed, plus the number of domain values dropped
// (Table 1's per-buffer 8 < 2^n <= 512 domains shrink; everything else is
// untouched). A width W is dominated by a smaller in-domain width W' for
// buffer p when widening past W' provably cannot improve the design:
//
//   - streaming p's per-task payload at W' already takes no longer than
//     the aggregate DDR floor (totalBytes / DDRBytesPerCycle), so the
//     memory initiation interval of pipelined task loops is set by the
//     channel, not by p's port; and
//   - the interface aggregate already saturates the DDR channel even with
//     every other buffer at its narrowest domain width, so unpipelined
//     burst transfers see the channel cap either way;
//
// while the wider port still pays monotonically more area (BRAM/LUT lanes
// grow with width). The rule only fires for buffers whose value range the
// abstract interpreter proved (Param.ValKnown): the proof certifies the
// buffer's traffic model — every element is a genuine payload element, so
// per-task bytes are exactly Length x element bytes and the dominance
// argument is closed. Like PruneStatic, callers may apply the returned
// space or use the count alone (the DSE reports it without changing the
// search trajectory).
func RestrictFromRanges(s *Space, dev *fpga.Device) (*Space, int) {
	if dev == nil || s.Kernel == nil {
		return s, 0
	}
	k := s.Kernel
	cap := float64(dev.DDRBytesPerCycle)
	if cap <= 0 {
		return s, 0
	}

	// Aggregate DDR floor cycles per task batch unit (the task-loop
	// parallel factor scales payload and floor alike, so it cancels).
	// Reduce-mode outputs are task-invariant accumulators excluded from
	// per-task traffic, matching the HLS estimator's memory model.
	var totalBytes float64
	for _, p := range k.Params {
		if !p.IsArray || (p.IsOutput && k.Pattern == cir.PatternReduce) {
			continue
		}
		totalBytes += float64(p.Length) * float64(p.Elem.Bits()) / 8
	}
	floorCycles := totalBytes / cap

	// Narrowest-possible aggregate contribution of each width parameter.
	minWidth := map[string]int{}
	for i := range s.Params {
		p := &s.Params[i]
		if p.Kind == FactorBitWidth && p.Size() > 0 {
			minWidth[p.Buffer] = p.ValueAt(0)
		}
	}

	var cons []Constraint
	removed := 0
	for i := range s.Params {
		sp := &s.Params[i]
		if sp.Kind != FactorBitWidth {
			continue
		}
		buf := k.Param(sp.Buffer)
		if buf == nil || !buf.ValKnown {
			continue
		}
		bytes := float64(buf.Length) * float64(buf.Elem.Bits()) / 8
		othersMin := 0.0
		for name, w := range minWidth {
			if name != sp.Buffer {
				othersMin += float64(w) / 8
			}
		}
		// Find the smallest saturating width: every larger domain value is
		// dominated by it.
		satOrd := -1
		for ord := 0; ord < sp.Size(); ord++ {
			w := float64(sp.ValueAt(ord))
			if bytes/(w/8) <= floorCycles && othersMin+w/8 >= cap {
				satOrd = ord
				break
			}
		}
		if satOrd < 0 || satOrd == sp.Size()-1 {
			continue
		}
		removed += sp.Size() - 1 - satOrd
		cons = append(cons, Constraint{Param: sp.Name, LoOrd: 0, HiOrd: satOrd})
	}
	if removed == 0 {
		return s, 0
	}
	out, err := Restrict(s, cons)
	if err != nil {
		return s, 0
	}
	return out, removed
}
