package core

import (
	"fmt"
	"math"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/ccache"
	"s2fa/internal/compile"
	"s2fa/internal/dse"
)

// outcomeKey serializes the DSE outcome fields of the determinism
// contract so "byte-identical trajectory" is checked literally.
func outcomeKey(o *dse.Outcome) string {
	s := fmt.Sprintf("evals=%d stop=%s total=%b best=%s/%b prune=%d dep=%d acc=%d collapse=%d\n",
		o.Evaluations, o.StopReason, math.Float64bits(o.TotalMinutes),
		o.Best.Point.Key(), math.Float64bits(o.Best.Objective),
		o.StaticallyPruned, o.DependPruned, o.AccessPruned, o.RangeCollapsed)
	for _, p := range o.Trajectory {
		s += fmt.Sprintf("  %b %b\n", math.Float64bits(p.Minutes), math.Float64bits(p.Objective))
	}
	return s
}

// TestCachedBuildByteIdentical is the acceptance property of the
// compile cache: an S-W seed-42 build served from the cache (source
// memo hit, precomputed depend/access analyses feeding the DSE guards)
// produces byte-identical artifacts and a byte-identical DSE trajectory
// to a fresh, cache-less build.
func TestCachedBuildByteIdentical(t *testing.T) {
	app := apps.Get("S-W")
	build := func(fw *Framework) *Build {
		fw.Seed = 42
		fw.Tasks = 512
		b, err := fw.BuildFromSource(app.Source)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	fresh := build(New())

	fw := New()
	fw.Cache = ccache.New()
	fw.Scratch = compile.NewScratch()
	miss := build(fw)
	hit := build(fw)

	st := fw.Cache.Stats()
	if st.Misses != 1 || st.SourceHits != 1 {
		t.Fatalf("cache stats: misses=%d sourceHits=%d, want 1 and 1", st.Misses, st.SourceHits)
	}

	for _, tc := range []struct {
		name string
		b    *Build
	}{{"miss", miss}, {"hit", hit}} {
		if got, want := tc.b.HLSSource(), fresh.HLSSource(); got != want {
			t.Errorf("%s: HLS source differs from fresh build", tc.name)
		}
		if got, want := tc.b.BestHLSSource(), fresh.BestHLSSource(); got != want {
			t.Errorf("%s: best-design HLS source differs from fresh build", tc.name)
		}
		if got, want := outcomeKey(tc.b.Outcome), outcomeKey(fresh.Outcome); got != want {
			t.Errorf("%s: DSE trajectory differs from fresh build:\ngot:\n%swant:\n%s", tc.name, got, want)
		}
	}

	// Deploy through the cache path: the purity gate is pre-seeded from
	// the cached facts and registration must still succeed.
	mgr := blaze.NewManager(fw.Device)
	if err := fw.Deploy(hit, mgr); err != nil {
		t.Fatalf("deploy with cache: %v", err)
	}
}
