// Package core is the S2FA framework facade: the end-to-end automation
// pipeline of the paper's Fig. 1. Given the Scala-subset source of a
// Blaze kernel class, it
//
//  1. compiles it to JVM-style bytecode (the scalac stage),
//  2. runs the bytecode-to-C compiler to obtain a functionally
//     equivalent HLS-C kernel with flattened composite types and the
//     RDD-pattern task-loop template,
//  3. identifies the design space (Table 1),
//  4. runs the parallel learning-based DSE to pick a microarchitecture
//     configuration,
//  5. produces a deployable Blaze accelerator (design + generated data
//     processing methods) that Spark applications invoke by ID.
package core

import (
	"fmt"

	"s2fa/internal/b2c"
	"s2fa/internal/blaze"
	"s2fa/internal/bytecode"
	"s2fa/internal/ccache"
	"s2fa/internal/cir"
	"s2fa/internal/compile"
	"s2fa/internal/dse"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/kdsl"
	"s2fa/internal/merlin"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// Framework holds the target platform and exploration defaults.
type Framework struct {
	Device *fpga.Device
	// Seed drives all DSE randomness (reproducible builds).
	Seed int64
	// Tasks is the batch size designs are optimized for.
	Tasks int
	// DSE selects the exploration mode; defaults to the full S2FA flow.
	DSE *dse.Config
	// HLS options (StageSplit is reserved for expert manual designs).
	HLS hls.Options
	// Trace, when set, receives spans for every pipeline stage (kdsl,
	// b2c, space identification, DSE) plus the search telemetry the DSE
	// emits. A nil Trace costs nothing; a live one never perturbs the
	// search — traced and untraced runs are byte-identical.
	Trace *obs.Trace
	// Scratch, when set, supplies reusable compile-stage buffers (token
	// and AST arenas, verifier stacks, abstract-interpreter states) so
	// batch compilations stop re-allocating them per kernel. Results are
	// byte-identical with or without it. Not safe for concurrent use —
	// give each goroutine its own.
	Scratch *compile.Scratch
	// Cache, when set, is the content-addressed compile cache: Compile
	// serves repeated kernels from it (a hit skips the frontend and b2c
	// entirely), BuildFromClass reuses its cached dependence/access
	// analyses for the DSE collapse guards, and Deploy pre-seeds the
	// Blaze purity gate from its cached facts. Cached and fresh runs are
	// byte-identical.
	Cache *ccache.Cache
}

// New returns a framework targeting the EC2 F1's VU9P with the paper's
// defaults.
func New() *Framework {
	return &Framework{Device: fpga.VU9P(), Seed: 1, Tasks: 4096}
}

// Build is the result of one end-to-end S2FA run.
type Build struct {
	Class  *bytecode.Class
	Kernel *cir.Kernel
	Space  *space.Space
	// Outcome is the DSE result (nil when exploration was skipped).
	Outcome *dse.Outcome
	// Best is the chosen design's HLS report.
	Best hls.Report
	// BestKernel is the kernel annotated with the chosen directives.
	BestKernel *cir.Kernel
	// Accelerator is ready for blaze.Manager.Register.
	Accelerator *blaze.Accelerator
}

// HLSSource renders the pristine generated HLS C (pre-DSE).
func (b *Build) HLSSource() string { return cir.Print(b.Kernel) }

// BestHLSSource renders the chosen design's annotated HLS C.
func (b *Build) BestHLSSource() string {
	if b.BestKernel == nil {
		return b.HLSSource()
	}
	return cir.Print(b.BestKernel)
}

// Compile runs only the front half: source -> bytecode -> HLS-C kernel.
// With Cache set it goes through the compile cache (repeat sources skip
// the whole pipeline); otherwise it compiles fresh, reusing Scratch
// buffers when present.
func (f *Framework) Compile(src string) (*bytecode.Class, *cir.Kernel, error) {
	if f.Cache != nil {
		cls, e, err := f.Cache.CompileSource(src, f.Trace, f.Scratch)
		if err != nil {
			return nil, nil, err
		}
		return cls, e.Kernel, nil
	}
	span := f.Trace.Begin("kdsl", "compile", obs.Int("src_bytes", len(src)))
	cls, err := kdsl.CompileSourceScratch(src, f.Scratch)
	if err != nil {
		span.End(obs.Bool("ok", false))
		return nil, nil, err
	}
	span.End(obs.Bool("ok", true), obs.Str("class", cls.Name))
	k, err := b2c.CompileScratch(cls, f.Trace, f.Scratch)
	if err != nil {
		return nil, nil, err
	}
	return cls, k, nil
}

// BuildFromSource runs the full pipeline on kernel source text.
func (f *Framework) BuildFromSource(src string) (*Build, error) {
	cls, k, err := f.Compile(src)
	if err != nil {
		return nil, err
	}
	return f.BuildFromClass(cls, k)
}

// BuildFromClass runs design-space identification, DSE, and accelerator
// assembly for an already compiled kernel.
func (f *Framework) BuildFromClass(cls *bytecode.Class, k *cir.Kernel) (*Build, error) {
	sspan := f.Trace.Begin("space", "identify", obs.Str("kernel", k.Name))
	sp := space.Identify(k)
	sspan.End(obs.Int("params", len(sp.Params)), obs.F64("points", sp.Cardinality()))
	b := &Build{Class: cls, Kernel: k, Space: sp}

	cfg := dse.S2FAConfig(f.Seed)
	if f.DSE != nil {
		cfg = *f.DSE
	}
	if cfg.Device == nil {
		cfg.Device = f.Device
	}
	if cfg.Trace == nil {
		cfg.Trace = f.Trace
	}
	if f.Cache != nil {
		// A kernel that came out of the cache carries precomputed
		// dependence/access analyses; hand them to the collapse guards
		// so a cache hit skips their re-analysis too.
		if e := f.Cache.EntryFor(k); e != nil {
			if cfg.Depend == nil {
				cfg.Depend = e.Depend
			}
			if cfg.Access == nil {
				cfg.Access = e.Access
			}
		}
	}
	tasks := f.Tasks
	if tasks <= 0 {
		tasks = 4096
	}
	// The parallel engine memoizes and traces internally (replay
	// evaluation), so it gets the pure evaluator; the sequential engine
	// gets the classic memoizing traced one.
	var eval tuner.Evaluator
	if cfg.Engine == dse.EngineParallel {
		eval = dse.NewPureEvaluator(k, b.Space, f.Device, int64(tasks), f.HLS)
	} else {
		eval = dse.NewTracedEvaluator(k, b.Space, f.Device, int64(tasks), f.HLS, f.Trace)
	}
	dspan := f.Trace.Begin("dse", "run", obs.Str("kernel", k.Name))
	b.Outcome = dse.Run(k, b.Space, eval, cfg)
	dspan.End(
		obs.Int("evaluations", b.Outcome.Evaluations),
		obs.F64("virtual_min", b.Outcome.TotalMinutes),
		obs.Str("stop", string(b.Outcome.StopReason)))
	if !b.Outcome.Best.Feasible {
		return nil, fmt.Errorf("core: DSE found no feasible design for %s", k.Name)
	}
	rep, ok := dse.Report(b.Outcome.Best)
	if !ok {
		return nil, fmt.Errorf("core: best result carries no HLS report")
	}
	b.Best = rep

	ann, err := merlin.Annotate(k, b.Space.Directives(b.Outcome.Best.Point))
	if err != nil {
		return nil, fmt.Errorf("core: annotating best design: %w", err)
	}
	b.BestKernel = ann

	b.Accelerator = &blaze.Accelerator{
		ID:     cls.ID,
		Layout: blaze.Layout{Class: cls, Kernel: ann},
		Design: rep.Design(k.Name),
	}
	return b, nil
}

// BuildWithDirectives skips the DSE and applies explicit directives (how
// the expert "manual designs" of Fig. 4 are assembled).
func (f *Framework) BuildWithDirectives(cls *bytecode.Class, k *cir.Kernel, d merlin.Directives, opt hls.Options) (*Build, error) {
	ann, err := merlin.Annotate(k, d)
	if err != nil {
		return nil, err
	}
	tasks := f.Tasks
	if tasks <= 0 {
		tasks = 4096
	}
	rep := hls.Estimate(ann, f.Device, int64(tasks), opt)
	if !rep.Feasible {
		return nil, fmt.Errorf("core: design is infeasible: %s", rep.Reason)
	}
	return &Build{
		Class:      cls,
		Kernel:     k,
		Space:      space.Identify(k),
		Best:       rep,
		BestKernel: ann,
		Accelerator: &blaze.Accelerator{
			ID:     cls.ID,
			Layout: blaze.Layout{Class: cls, Kernel: ann},
			Design: rep.Design(k.Name),
		},
	}, nil
}

// Deploy registers the build's accelerator with a Blaze manager (the
// bit-stream broadcast step of Fig. 1).
func (f *Framework) Deploy(b *Build, mgr *blaze.Manager) error {
	if b.Accelerator == nil {
		return fmt.Errorf("core: build has no accelerator")
	}
	if f.Cache != nil {
		// Seed the manager's purity gate from the cached facts so the
		// first offload skips re-running the abstract interpreter.
		if e := f.Cache.EntryFor(b.Kernel); e != nil && e.Facts != nil {
			mgr.SeedPurity(b.Class, e.Facts)
		}
	}
	return mgr.Register(b.Accelerator)
}
