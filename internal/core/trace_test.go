package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/dse"
	"s2fa/internal/fpga"
	"s2fa/internal/jvmsim"
	"s2fa/internal/obs"
	"s2fa/internal/spark"
)

// buildSW runs the full S-W pipeline at seed 42, optionally traced and
// optionally on the parallel DSE engine, then deploys the accelerator
// and executes a small MapAcc batch so the blaze runtime stage appears
// in the trace too.
func buildSW(t *testing.T, tr *obs.Trace, parallel bool) *Build {
	t.Helper()
	a := apps.Get("S-W")
	fw := New()
	fw.Seed = 42
	fw.Tasks = a.Tasks
	fw.Trace = tr
	if parallel {
		cfg := dse.S2FAConfig(fw.Seed)
		cfg.Engine = dse.EngineParallel
		cfg.Parallelism = 4
		fw.DSE = &cfg
	}

	b, err := fw.BuildFromSource(a.Source)
	if err != nil {
		t.Fatal(err)
	}

	mgr := blaze.NewManager(fpga.VU9P())
	mgr.Trace = tr
	if err := fw.Deploy(b, mgr); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rdd := spark.Parallelize(spark.NewContext(), a.Gen(rng, 4), 1)
	_, stats, err := blaze.Wrap(rdd, mgr).MapAcc(jvmsim.New(b.Class))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedFPGA {
		t.Fatalf("offload fell back: %s", stats.Fallback)
	}
	return b
}

// TestTracingDeterminism is the observability layer's non-negotiable
// invariant: a traced S-W run at seed 42 must follow a byte-identical
// search trajectory and land on the same best design as an untraced one.
// The emitted JSONL must cover every pipeline stage and round-trip
// through the Chrome trace_event exporter.
func TestTracingDeterminism(t *testing.T) {
	var jsonl bytes.Buffer
	tr := obs.New(obs.NewJSONL(&jsonl))
	traced := buildSW(t, tr, false)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	plain := buildSW(t, nil, false)

	// Byte-identical trajectories: same (virtual minute, objective) pairs
	// in the same order.
	tj := fmt.Sprintf("%v", traced.Outcome.Trajectory)
	pj := fmt.Sprintf("%v", plain.Outcome.Trajectory)
	if tj != pj {
		t.Errorf("tracing perturbed the trajectory:\ntraced  %s\nuntraced %s", tj, pj)
	}
	if got, want := traced.Outcome.Best.Point.Key(), plain.Outcome.Best.Point.Key(); got != want {
		t.Errorf("best design differs: traced %s, untraced %s", got, want)
	}
	tb := math.Float64bits(traced.Outcome.Best.Objective)
	pb := math.Float64bits(plain.Outcome.Best.Objective)
	if tb != pb {
		t.Errorf("best objective differs: traced %x, untraced %x", tb, pb)
	}
	if traced.Outcome.Evaluations != plain.Outcome.Evaluations {
		t.Errorf("evaluation count differs: traced %d, untraced %d",
			traced.Outcome.Evaluations, plain.Outcome.Evaluations)
	}
	if traced.Outcome.StopReason != plain.Outcome.StopReason {
		t.Errorf("stop reason differs: traced %s, untraced %s",
			traced.Outcome.StopReason, plain.Outcome.StopReason)
	}

	// Every pipeline stage must have opened at least one span.
	events, err := obs.ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	begun := map[string]bool{}
	for _, e := range events {
		if e.Ph == obs.PhaseBegin {
			begun[e.Cat] = true
		}
	}
	for _, stage := range []string{"kdsl", "bytecode", "absint", "b2c", "lint", "space", "hls", "dse", "blaze"} {
		if !begun[stage] {
			t.Errorf("no span for pipeline stage %q (got %v)", stage, begun)
		}
	}

	// The JSONL must round-trip through the Chrome exporter into a valid
	// trace_event document Perfetto can load.
	var chrome bytes.Buffer
	if err := obs.WriteChrome(events, &chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(events) {
		t.Errorf("chrome export dropped events: %d < %d", len(doc.TraceEvents), len(events))
	}

	// Maximum observability must still be free: metrics registry, flight
	// recorder, AND the parallel engine (whose pool goroutines run under
	// pprof labels) attached at once, yet the seed-42 trajectory stays
	// byte-identical to the bare sequential run.
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(obs.RecorderConfig{})
	var heavy bytes.Buffer
	tr2 := obs.New(obs.Multi(obs.NewJSONL(&heavy), rec), obs.WithRegistry(reg))
	full := buildSW(t, tr2, true)
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	if fj := fmt.Sprintf("%v", full.Outcome.Trajectory); fj != pj {
		t.Errorf("registry+recorder+parallel run perturbed the trajectory:\nfull     %s\nuntraced %s", fj, pj)
	}
	if got, want := full.Outcome.Best.Point.Key(), plain.Outcome.Best.Point.Key(); got != want {
		t.Errorf("full-observability best design differs: %s vs %s", got, want)
	}
	fb := math.Float64bits(full.Outcome.Best.Objective)
	if fb != pb {
		t.Errorf("full-observability best objective differs: %x vs %x", fb, pb)
	}
	if full.Outcome.Evaluations != plain.Outcome.Evaluations {
		t.Errorf("full-observability evaluation count differs: %d vs %d",
			full.Outcome.Evaluations, plain.Outcome.Evaluations)
	}

	// And the observers must actually have observed: the registry's eval
	// counter matches the outcome, and the auto-wired span histograms
	// carry at least the DSE stage.
	snap := reg.Snapshot()
	if got := snap.Counters["dse.evals"]; got != int64(full.Outcome.Evaluations) {
		t.Errorf("registry dse.evals = %d, want %d", got, full.Outcome.Evaluations)
	}
	var sawDSEStage bool
	for name := range snap.Histograms {
		if name == `stage_us{stage="dse/run"}` {
			sawDSEStage = true
		}
	}
	if !sawDSEStage {
		t.Errorf("registry missing auto-wired stage_us{stage=\"dse/run\"} histogram (have %d series)", len(snap.Histograms))
	}
}
