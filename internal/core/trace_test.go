package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/fpga"
	"s2fa/internal/jvmsim"
	"s2fa/internal/obs"
	"s2fa/internal/spark"
)

// buildSW runs the full S-W pipeline at seed 42, optionally traced, then
// deploys the accelerator and executes a small MapAcc batch so the blaze
// runtime stage appears in the trace too.
func buildSW(t *testing.T, tr *obs.Trace) *Build {
	t.Helper()
	a := apps.Get("S-W")
	fw := New()
	fw.Seed = 42
	fw.Tasks = a.Tasks
	fw.Trace = tr

	b, err := fw.BuildFromSource(a.Source)
	if err != nil {
		t.Fatal(err)
	}

	mgr := blaze.NewManager(fpga.VU9P())
	mgr.Trace = tr
	if err := fw.Deploy(b, mgr); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rdd := spark.Parallelize(spark.NewContext(), a.Gen(rng, 4), 1)
	_, stats, err := blaze.Wrap(rdd, mgr).MapAcc(jvmsim.New(b.Class))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedFPGA {
		t.Fatalf("offload fell back: %s", stats.Fallback)
	}
	return b
}

// TestTracingDeterminism is the observability layer's non-negotiable
// invariant: a traced S-W run at seed 42 must follow a byte-identical
// search trajectory and land on the same best design as an untraced one.
// The emitted JSONL must cover every pipeline stage and round-trip
// through the Chrome trace_event exporter.
func TestTracingDeterminism(t *testing.T) {
	var jsonl bytes.Buffer
	tr := obs.New(obs.NewJSONL(&jsonl))
	traced := buildSW(t, tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	plain := buildSW(t, nil)

	// Byte-identical trajectories: same (virtual minute, objective) pairs
	// in the same order.
	tj := fmt.Sprintf("%v", traced.Outcome.Trajectory)
	pj := fmt.Sprintf("%v", plain.Outcome.Trajectory)
	if tj != pj {
		t.Errorf("tracing perturbed the trajectory:\ntraced  %s\nuntraced %s", tj, pj)
	}
	if got, want := traced.Outcome.Best.Point.Key(), plain.Outcome.Best.Point.Key(); got != want {
		t.Errorf("best design differs: traced %s, untraced %s", got, want)
	}
	tb := math.Float64bits(traced.Outcome.Best.Objective)
	pb := math.Float64bits(plain.Outcome.Best.Objective)
	if tb != pb {
		t.Errorf("best objective differs: traced %x, untraced %x", tb, pb)
	}
	if traced.Outcome.Evaluations != plain.Outcome.Evaluations {
		t.Errorf("evaluation count differs: traced %d, untraced %d",
			traced.Outcome.Evaluations, plain.Outcome.Evaluations)
	}
	if traced.Outcome.StopReason != plain.Outcome.StopReason {
		t.Errorf("stop reason differs: traced %s, untraced %s",
			traced.Outcome.StopReason, plain.Outcome.StopReason)
	}

	// Every pipeline stage must have opened at least one span.
	events, err := obs.ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	begun := map[string]bool{}
	for _, e := range events {
		if e.Ph == obs.PhaseBegin {
			begun[e.Cat] = true
		}
	}
	for _, stage := range []string{"kdsl", "bytecode", "absint", "b2c", "lint", "space", "hls", "dse", "blaze"} {
		if !begun[stage] {
			t.Errorf("no span for pipeline stage %q (got %v)", stage, begun)
		}
	}

	// The JSONL must round-trip through the Chrome exporter into a valid
	// trace_event document Perfetto can load.
	var chrome bytes.Buffer
	if err := obs.WriteChrome(events, &chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(events) {
		t.Errorf("chrome export dropped events: %d < %d", len(doc.TraceEvents), len(events))
	}
}
