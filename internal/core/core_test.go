package core

import (
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/cir"
	"s2fa/internal/dse"
	"s2fa/internal/hls"
	"s2fa/internal/merlin"
)

const tinySrc = `
class Tiny extends Accelerator[(Array[Int], Int), Int] {
  val id: String = "tiny_kernel"
  val inSizes: Array[Int] = Array(8, 1)
  def call(in: (Array[Int], Int)): Int = {
    val v: Array[Int] = in._1
    val bias: Int = in._2
    var s: Int = bias
    for (i <- 0 until 8) {
      s = s + v(i)
    }
    s
  }
}
`

func TestCompileOnly(t *testing.T) {
	fw := New()
	cls, k, err := fw.Compile(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	if cls.ID != "tiny_kernel" {
		t.Errorf("id = %q", cls.ID)
	}
	if k.TaskLoopID != "L0" || len(k.Loops()) != 2 {
		t.Errorf("kernel shape: %d loops", len(k.Loops()))
	}
}

func TestBuildEndToEnd(t *testing.T) {
	fw := New()
	fw.Tasks = 512
	b, err := fw.BuildFromSource(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Best.Feasible {
		t.Fatal("no feasible design")
	}
	if b.Outcome == nil || b.Outcome.Evaluations == 0 {
		t.Error("DSE did not run")
	}
	if b.Accelerator == nil || b.Accelerator.ID != "tiny_kernel" {
		t.Error("accelerator not assembled")
	}
	if !strings.Contains(b.HLSSource(), "void tiny_kernel") {
		t.Error("HLS source missing kernel function")
	}
	// The best design's annotated source should carry at least one
	// directive (the DSE never picks the all-off point for this kernel).
	if b.BestHLSSource() == b.HLSSource() {
		t.Log("best design equals pristine kernel (all-off point chosen)")
	}

	mgr := blaze.NewManager(fw.Device)
	if err := fw.Deploy(b, mgr); err != nil {
		t.Fatal(err)
	}
	if mgr.Lookup("tiny_kernel") == nil {
		t.Error("deploy did not register the accelerator")
	}
}

func TestBuildDeterministic(t *testing.T) {
	build := func() float64 {
		fw := New()
		fw.Tasks = 512
		b, err := fw.BuildFromSource(tinySrc)
		if err != nil {
			t.Fatal(err)
		}
		return b.Outcome.Best.Objective
	}
	if build() != build() {
		t.Error("same seed produced different builds")
	}
}

func TestBuildWithDirectives(t *testing.T) {
	fw := New()
	cls, k, err := fw.Compile(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	d := merlin.Directives{Loops: map[string]cir.LoopOpt{
		"L0": {Pipeline: cir.PipeOn, Parallel: 4},
		"L1": {Pipeline: cir.PipeOn},
	}}
	b, err := fw.BuildWithDirectives(cls, k, d, hls.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != nil {
		t.Error("directive build should skip the DSE")
	}
	if !strings.Contains(b.BestHLSSource(), "#pragma ACCEL") {
		t.Error("directives missing from the annotated source")
	}
	// Infeasible directives are rejected.
	bad := merlin.Directives{Loops: map[string]cir.LoopOpt{"L0": {Parallel: 256, Pipeline: cir.PipeOn}, "L1": {Parallel: 8}}}
	if _, err := fw.BuildWithDirectives(cls, k, bad, hls.Options{}); err == nil {
		t.Log("note: aggressive directive set remained feasible for the tiny kernel")
	}
}

func TestBuildVanillaMode(t *testing.T) {
	fw := New()
	fw.Tasks = 512
	cfg := dse.VanillaConfig(1)
	cfg.TimeLimitMinutes = 60
	fw.DSE = &cfg
	b, err := fw.BuildFromSource(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outcome.Partitions) != 1 {
		t.Errorf("vanilla mode used %d partitions", len(b.Outcome.Partitions))
	}
}

func TestBuildAllPaperApps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			fw := New()
			fw.Tasks = a.Tasks
			b, err := fw.BuildFromSource(a.Source)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Best.Feasible {
				t.Fatal("no feasible design")
			}
			if b.Best.MaxUtil() > fw.Device.UsableFrac+1e-9 {
				t.Errorf("deployed design exceeds the usable cap: %.0f%%", b.Best.MaxUtil()*100)
			}
			if b.Best.FreqMHz < 60 || b.Best.FreqMHz > 250 {
				t.Errorf("frequency out of range: %v", b.Best.FreqMHz)
			}
		})
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	fw := New()
	if _, _, err := fw.Compile("class Broken {"); err == nil {
		t.Error("syntax error not surfaced")
	}
}
