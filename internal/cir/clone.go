package cir

// CloneKernel returns a deep copy of k. Merlin transformations operate on
// clones so that the pristine kernel produced by the bytecode-to-C
// compiler can be re-specialized for every design point.
func CloneKernel(k *Kernel) *Kernel {
	out := &Kernel{
		Name:       k.Name,
		Pattern:    k.Pattern,
		TaskLoopID: k.TaskLoopID,
		Globals:    make([]Global, len(k.Globals)),
		Params:     make([]Param, len(k.Params)),
		Body:       CloneBlock(k.Body),
	}
	copy(out.Params, k.Params)
	for i, g := range k.Globals {
		data := make([]Value, len(g.Data))
		copy(data, g.Data)
		out.Globals[i] = Global{Name: g.Name, Elem: g.Elem, Data: data}
	}
	return out
}

// CloneBlock deep-copies a statement block.
func CloneBlock(b Block) Block {
	if b == nil {
		return nil
	}
	out := make(Block, len(b))
	for i, s := range b {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Decl:
		return &Decl{Name: s.Name, K: s.K, Init: CloneExpr(s.Init)}
	case *ArrDecl:
		return &ArrDecl{Name: s.Name, Elem: s.Elem, Len: s.Len}
	case *Assign:
		return &Assign{LHS: CloneExpr(s.LHS), RHS: CloneExpr(s.RHS)}
	case *If:
		return &If{Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), Else: CloneBlock(s.Else)}
	case *Loop:
		return &Loop{
			ID:        s.ID,
			Var:       s.Var,
			Lo:        CloneExpr(s.Lo),
			Hi:        CloneExpr(s.Hi),
			Step:      s.Step,
			Body:      CloneBlock(s.Body),
			Opt:       s.Opt,
			Reduction: s.Reduction,
		}
	case *While:
		return &While{Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body)}
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	case *Return:
		return &Return{Val: CloneExpr(s.Val)}
	}
	return nil
}

// CloneExpr deep-copies an expression; nil in, nil out.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit:
		return &IntLit{K: e.K, Val: e.Val}
	case *FloatLit:
		return &FloatLit{K: e.K, Val: e.Val}
	case *VarRef:
		return &VarRef{K: e.K, Name: e.Name}
	case *Index:
		return &Index{K: e.K, Arr: e.Arr, Idx: CloneExpr(e.Idx), Pos: e.Pos}
	case *Unary:
		return &Unary{Op: e.Op, X: CloneExpr(e.X)}
	case *Binary:
		return &Binary{K: e.K, Op: e.Op, L: CloneExpr(e.L), R: CloneExpr(e.R)}
	case *Cast:
		return &Cast{To: e.To, X: CloneExpr(e.X)}
	case *Cond:
		return &Cond{C: CloneExpr(e.C), T: CloneExpr(e.T), F: CloneExpr(e.F)}
	case *Call:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = CloneExpr(a)
		}
		return &Call{K: e.K, Name: e.Name, Args: args}
	}
	return nil
}

// SubstVar returns e with every VarRef named from replaced by a clone of
// to. It is used by loop transformations to rewrite induction variables.
func SubstVar(e Expr, from string, to Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit, *FloatLit:
		return CloneExpr(e)
	case *VarRef:
		if e.Name == from {
			return CloneExpr(to)
		}
		return CloneExpr(e)
	case *Index:
		return &Index{K: e.K, Arr: e.Arr, Idx: SubstVar(e.Idx, from, to), Pos: e.Pos}
	case *Unary:
		return &Unary{Op: e.Op, X: SubstVar(e.X, from, to)}
	case *Binary:
		return &Binary{K: e.K, Op: e.Op, L: SubstVar(e.L, from, to), R: SubstVar(e.R, from, to)}
	case *Cast:
		return &Cast{To: e.To, X: SubstVar(e.X, from, to)}
	case *Cond:
		return &Cond{C: SubstVar(e.C, from, to), T: SubstVar(e.T, from, to), F: SubstVar(e.F, from, to)}
	case *Call:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = SubstVar(a, from, to)
		}
		return &Call{K: e.K, Name: e.Name, Args: args}
	}
	return nil
}

// SubstVarBlock applies SubstVar across a whole block, also renaming
// matching assignment targets and declaration names are left untouched
// (transformations are responsible for alpha-renaming declarations first).
func SubstVarBlock(b Block, from string, to Expr) Block {
	out := make(Block, len(b))
	for i, s := range b {
		out[i] = substVarStmt(s, from, to)
	}
	return out
}

func substVarStmt(s Stmt, from string, to Expr) Stmt {
	switch s := s.(type) {
	case *Decl:
		return &Decl{Name: s.Name, K: s.K, Init: SubstVar(s.Init, from, to)}
	case *ArrDecl:
		return &ArrDecl{Name: s.Name, Elem: s.Elem, Len: s.Len}
	case *Assign:
		return &Assign{LHS: SubstVar(s.LHS, from, to), RHS: SubstVar(s.RHS, from, to)}
	case *If:
		return &If{
			Cond: SubstVar(s.Cond, from, to),
			Then: SubstVarBlock(s.Then, from, to),
			Else: SubstVarBlock(s.Else, from, to),
		}
	case *Loop:
		l := &Loop{
			ID:        s.ID,
			Var:       s.Var,
			Lo:        SubstVar(s.Lo, from, to),
			Hi:        SubstVar(s.Hi, from, to),
			Step:      s.Step,
			Opt:       s.Opt,
			Reduction: s.Reduction,
		}
		if s.Var == from {
			// Inner loop shadows the variable; body is untouched.
			l.Body = CloneBlock(s.Body)
		} else {
			l.Body = SubstVarBlock(s.Body, from, to)
		}
		return l
	case *While:
		return &While{Cond: SubstVar(s.Cond, from, to), Body: SubstVarBlock(s.Body, from, to)}
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	case *Return:
		return &Return{Val: SubstVar(s.Val, from, to)}
	}
	return nil
}
