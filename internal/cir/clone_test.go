package cir

import (
	"strings"
	"testing"
)

func TestCloneKernelIndependence(t *testing.T) {
	k := nestKernel()
	cp := CloneKernel(k)

	// Mutate the clone's loop options and bounds.
	cp.FindLoop("L1").Opt.Parallel = 8
	cp.FindLoop("L2").Hi = &IntLit{K: Int, Val: 999}
	cp.Params[0].BitWidth = 512

	if k.FindLoop("L1").Opt.Parallel != 0 {
		t.Error("clone option mutation leaked into the original")
	}
	if hi := k.FindLoop("L2").Hi.(*IntLit); hi.Val != 8 {
		t.Error("clone bound mutation leaked into the original")
	}
	if k.Params[0].BitWidth != 0 {
		t.Error("clone param mutation leaked into the original")
	}
}

func TestCloneGlobalsDeepCopied(t *testing.T) {
	k := &Kernel{
		Name:    "g",
		Globals: []Global{{Name: "tab", Elem: Int, Data: intBuf(1, 2, 3)}},
	}
	cp := CloneKernel(k)
	cp.Globals[0].Data[0] = IntVal(Int, 99)
	if k.Globals[0].Data[0].I != 1 {
		t.Error("global data shared between clone and original")
	}
}

func TestSubstVar(t *testing.T) {
	// i + a[i]  with i -> (i + 4)
	e := &Binary{K: Int, Op: Add,
		L: &VarRef{K: Int, Name: "i"},
		R: &Index{K: Int, Arr: "a", Idx: &VarRef{K: Int, Name: "i"}},
	}
	repl := &Binary{K: Int, Op: Add, L: &VarRef{K: Int, Name: "i"}, R: &IntLit{K: Int, Val: 4}}
	out := SubstVar(e, "i", repl)
	s := ExprString(out)
	if s != "((i + 4) + a[(i + 4)])" {
		t.Errorf("subst = %s", s)
	}
	// Original untouched.
	if ExprString(e) != "(i + a[i])" {
		t.Errorf("original mutated: %s", ExprString(e))
	}
}

func TestSubstVarBlockShadowing(t *testing.T) {
	// An inner loop that redeclares the variable shields its body.
	inner := &Loop{
		ID: "L1", Var: "i",
		Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 4}, Step: 1,
		Body: Block{&Assign{
			LHS: &VarRef{K: Int, Name: "x"},
			RHS: &VarRef{K: Int, Name: "i"},
		}},
	}
	b := Block{
		&Assign{LHS: &VarRef{K: Int, Name: "y"}, RHS: &VarRef{K: Int, Name: "i"}},
		inner,
	}
	out := SubstVarBlock(b, "i", &IntLit{K: Int, Val: 7})
	first := out[0].(*Assign)
	if ExprString(first.RHS) != "7" {
		t.Errorf("outer use not substituted: %s", ExprString(first.RHS))
	}
	innerOut := out[1].(*Loop)
	body := innerOut.Body[0].(*Assign)
	if ExprString(body.RHS) != "i" {
		t.Errorf("shadowed use substituted: %s", ExprString(body.RHS))
	}
}

func TestRenameLocals(t *testing.T) {
	b := Block{
		&Decl{Name: "x", K: Int, Init: &IntLit{K: Int, Val: 1}},
		&ArrDecl{Name: "buf", Elem: Int, Len: 4},
		&Loop{
			ID: "L5", Var: "k",
			Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 4}, Step: 1,
			Body: Block{&Assign{
				LHS: &Index{K: Int, Arr: "buf", Idx: &VarRef{K: Int, Name: "k"}},
				RHS: &Binary{K: Int, Op: Add, L: &VarRef{K: Int, Name: "x"}, R: &VarRef{K: Int, Name: "outside"}},
			}},
		},
	}
	out := RenameLocals(b, "_u1")
	decl := out[0].(*Decl)
	if decl.Name != "x_u1" {
		t.Errorf("decl name = %s", decl.Name)
	}
	arr := out[1].(*ArrDecl)
	if arr.Name != "buf_u1" {
		t.Errorf("array name = %s", arr.Name)
	}
	loop := out[2].(*Loop)
	if loop.Var != "k_u1" || loop.ID != "L5_u1" {
		t.Errorf("loop var/id = %s/%s", loop.Var, loop.ID)
	}
	asn := loop.Body[0].(*Assign)
	if got := ExprString(asn.LHS); got != "buf_u1[k_u1]" {
		t.Errorf("lhs = %s", got)
	}
	if got := ExprString(asn.RHS); !strings.Contains(got, "x_u1") || !strings.Contains(got, "outside") {
		t.Errorf("rhs = %s (external names must survive, locals renamed)", got)
	}
}

func TestPrintContainsPragmas(t *testing.T) {
	k := nestKernel()
	k.FindLoop("L1").Opt = LoopOpt{Parallel: 8, Pipeline: PipeOn, Tile: 4}
	k.FindLoop("L2").Opt = LoopOpt{Pipeline: PipeFlatten}
	k.Params[0].BitWidth = 256
	src := Print(k)
	for _, want := range []string{
		"#pragma ACCEL parallel factor=8",
		"#pragma ACCEL pipeline\n",
		"#pragma ACCEL pipeline flatten",
		"#pragma ACCEL tile factor=4",
		"bitwidth=256",
		"void nest(int N",
		"for (int _task = 0; _task < N; _task += 1)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("printed kernel missing %q:\n%s", want, src)
		}
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&IntLit{K: Long, Val: 5}, "5L"},
		{&FloatLit{K: Float, Val: 1.5}, "1.5f"},
		{&Unary{Op: Not, X: &VarRef{K: Bool, Name: "b"}}, "!(b)"},
		{&Cast{To: Double, X: &VarRef{K: Int, Name: "x"}}, "(double)(x)"},
		{&Call{K: Double, Name: "exp", Args: []Expr{&VarRef{K: Double, Name: "d"}}}, "exp(d)"},
		{&Cond{C: &VarRef{K: Bool, Name: "c"}, T: &IntLit{K: Int, Val: 1}, F: &IntLit{K: Int, Val: 0}}, "(c ? 1 : 0)"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}
