package cir

import (
	"fmt"
	"sort"
	"strings"
)

// OpCount tallies the operations in a region of code, bucketed the way the
// HLS resource/latency model consumes them.
type OpCount struct {
	IntAdd int // integer add/sub/logic/shift/compare
	IntMul int
	IntDiv int
	FpAdd  int // floating add/sub/compare
	FpMul  int
	FpDiv  int
	Transc int // transcendental intrinsics (exp, log, pow, sqrt)
	Select int // ternaries and if-conversion candidates
	Loads  int // array element reads
	Stores int // array element writes
}

// Add accumulates o2 into o.
func (o *OpCount) Add(o2 OpCount) {
	o.IntAdd += o2.IntAdd
	o.IntMul += o2.IntMul
	o.IntDiv += o2.IntDiv
	o.FpAdd += o2.FpAdd
	o.FpMul += o2.FpMul
	o.FpDiv += o2.FpDiv
	o.Transc += o2.Transc
	o.Select += o2.Select
	o.Loads += o2.Loads
	o.Stores += o2.Stores
}

// Scale multiplies all counts by n (used when unrolling).
func (o *OpCount) Scale(n int) {
	o.IntAdd *= n
	o.IntMul *= n
	o.IntDiv *= n
	o.FpAdd *= n
	o.FpMul *= n
	o.FpDiv *= n
	o.Transc *= n
	o.Select *= n
	o.Loads *= n
	o.Stores *= n
}

// Total returns the total operation count.
func (o OpCount) Total() int {
	return o.IntAdd + o.IntMul + o.IntDiv + o.FpAdd + o.FpMul + o.FpDiv + o.Transc + o.Select + o.Loads + o.Stores
}

// ArrayAccess summarizes how one loop body touches one array.
type ArrayAccess struct {
	Reads  int
	Writes int
	// Carried reports a (conservatively detected) loop-carried dependence
	// through this array with respect to the owning loop's induction
	// variable.
	Carried bool
}

// LoopInfo is one node of the loop-nest tree.
type LoopInfo struct {
	Loop     *Loop
	Parent   *LoopInfo
	Children []*LoopInfo
	Depth    int   // 0 for outermost (task) loop
	Trip     int64 // constant trip count, 0 if unknown

	// BodyOps counts operations in the direct body, excluding nested
	// loops (their costs live in their own nodes).
	BodyOps OpCount
	// SubtreeOps counts operations across the entire subtree body,
	// weighted by nothing (static counts).
	SubtreeOps OpCount

	// Access maps array name to access summary over the whole subtree.
	Access map[string]*ArrayAccess

	// ScalarRec lists iteration-crossing scalar recurrences (e.g.
	// accumulators) carried by this loop.
	ScalarRec []string
	// RecOps counts the operations on the recurrence cycle(s): the RHS
	// work of recurrence assignments. Determines the recurrence-limited
	// initiation interval.
	RecOps OpCount
	// HasTranscendental reports a transcendental call anywhere in the
	// subtree body.
	HasTranscendental bool
	// HasWhile reports a general while loop anywhere in the subtree: a
	// variable-trip region that no unroller (pipeline flatten, full
	// unroll) can eliminate.
	HasWhile bool
	// CarriedArrays lists arrays through which this loop carries a
	// dependence across iterations. Arrays declared inside the loop body
	// are iteration-local and never appear here.
	CarriedArrays []string
	// ArrayCarried reports a loop-carried dependence through any array.
	ArrayCarried bool
}

// Carried reports whether the loop carries any dependence (scalar or
// array) across iterations — the quantity that bounds pipeline II.
func (li *LoopInfo) Carried() bool {
	return len(li.ScalarRec) > 0 || li.ArrayCarried
}

// KernelInfo is the full analysis result for one kernel.
type KernelInfo struct {
	Kernel *Kernel
	Roots  []*LoopInfo
	All    []*LoopInfo // preorder
	ByID   map[string]*LoopInfo
	// TopOps counts statements outside any loop.
	TopOps OpCount
	// LocalArrays maps local array name to its byte size (on-chip BRAM
	// candidates).
	LocalArrays map[string]int
	MaxDepth    int
}

// Analyze builds the loop-nest tree and dependence summary for k. This is
// the reproduction of the kernel AST analysis S2FA performs with the ROSE
// compiler infrastructure and a polyhedral framework (paper §4.1) to
// realize loop trip-counts, bit-widths, and dependences.
func Analyze(k *Kernel) *KernelInfo {
	info := &KernelInfo{
		Kernel:      k,
		ByID:        map[string]*LoopInfo{},
		LocalArrays: map[string]int{},
	}
	declared := map[string]bool{}
	info.TopOps = analyzeBlock(k.Body, nil, info, declared)
	for _, li := range info.All {
		if li.Depth > info.MaxDepth {
			info.MaxDepth = li.Depth
		}
	}
	for _, r := range info.Roots {
		finishLoop(r)
	}
	return info
}

// LoopShape returns a canonical signature of the loop hierarchy, e.g.
// "1(2(3)(3))" for a triply nested kernel. The DSE partitioner groups
// applications with geometrically similar hierarchies (paper §4.3.1).
func (ki *KernelInfo) LoopShape() string {
	var b strings.Builder
	var walk func(li *LoopInfo)
	walk = func(li *LoopInfo) {
		fmt.Fprintf(&b, "%d", li.Depth+1)
		if len(li.Children) > 0 {
			for _, c := range li.Children {
				b.WriteString("(")
				walk(c)
				b.WriteString(")")
			}
		}
	}
	for _, r := range ki.Roots {
		walk(r)
	}
	return b.String()
}

// analyzeBlock walks a block attributing costs to the enclosing loop node
// (cur may be nil for top level). declared tracks scalars declared within
// the current loop body (iteration-local, thus not recurrences).
func analyzeBlock(b Block, cur *LoopInfo, info *KernelInfo, declared map[string]bool) OpCount {
	var ops OpCount
	for _, s := range b {
		switch s := s.(type) {
		case *Decl:
			declared[s.Name] = true
			if s.Init != nil {
				ops.Add(countExpr(s.Init, cur, info))
			}
		case *ArrDecl:
			info.LocalArrays[s.Name] = s.Len * s.Elem.Bits() / 8
		case *Assign:
			ops.Add(countExpr(s.RHS, cur, info))
			switch lhs := s.LHS.(type) {
			case *VarRef:
				if cur != nil && !declared[lhs.Name] && exprMentionsVar(s.RHS, lhs.Name) {
					// Loop-carried scalar recurrence: target declared
					// outside this loop and used in its own update.
					addRecurrence(cur, lhs.Name, s.RHS, info)
				}
			case *Index:
				ops.Add(countExpr(lhs.Idx, cur, info))
				ops.Stores++
				recordAccess(cur, lhs.Arr, false)
			}
		case *If:
			ops.Add(countExpr(s.Cond, cur, info))
			ops.Add(analyzeBlock(s.Then, cur, info, declared))
			ops.Add(analyzeBlock(s.Else, cur, info, declared))
		case *Loop:
			li := &LoopInfo{
				Loop:   s,
				Parent: cur,
				Access: map[string]*ArrayAccess{},
				Trip:   s.TripCount(),
			}
			if cur != nil {
				li.Depth = cur.Depth + 1
				cur.Children = append(cur.Children, li)
			} else {
				info.Roots = append(info.Roots, li)
			}
			info.All = append(info.All, li)
			info.ByID[s.ID] = li
			childDecl := map[string]bool{s.Var: true}
			li.BodyOps = analyzeBlock(s.Body, li, info, childDecl)
			// Loop bound/step bookkeeping counts as one int add + one
			// compare per iteration.
			li.BodyOps.IntAdd += 2
		case *While:
			// Treated as an opaque sequential region charged to the
			// enclosing loop.
			if cur != nil {
				cur.HasWhile = true
			}
			ops.Add(countExpr(s.Cond, cur, info))
			ops.Add(analyzeBlock(s.Body, cur, info, declared))
		case *Return:
			if s.Val != nil {
				ops.Add(countExpr(s.Val, cur, info))
			}
		}
	}
	return ops
}

// finishLoop aggregates subtree quantities and resolves array-carried
// dependences once all children are known.
func finishLoop(li *LoopInfo) {
	li.SubtreeOps = li.BodyOps
	for _, c := range li.Children {
		finishLoop(c)
		li.SubtreeOps.Add(c.SubtreeOps)
		if c.HasTranscendental {
			li.HasTranscendental = true
		}
		if c.HasWhile {
			li.HasWhile = true
		}
		for name, a := range c.Access {
			acc := li.Access[name]
			if acc == nil {
				acc = &ArrayAccess{}
				li.Access[name] = acc
			}
			acc.Reads += a.Reads
			acc.Writes += a.Writes
		}
	}
	li.CarriedArrays = detectCarriedArrays(li)
	li.ArrayCarried = len(li.CarriedArrays) > 0
}

func addRecurrence(li *LoopInfo, name string, rhs Expr, info *KernelInfo) {
	for _, r := range li.ScalarRec {
		if r == name {
			return
		}
	}
	li.ScalarRec = append(li.ScalarRec, name)
	li.RecOps.Add(countExpr(rhs, nil, info))
}

func recordAccess(li *LoopInfo, arr string, read bool) {
	for ; li != nil; li = li.Parent {
		a := li.Access[arr]
		if a == nil {
			a = &ArrayAccess{}
			li.Access[arr] = a
		}
		if read {
			a.Reads++
		} else {
			a.Writes++
		}
		break // subtree aggregation happens in finishLoop
	}
}

func countExpr(e Expr, cur *LoopInfo, info *KernelInfo) OpCount {
	var ops OpCount
	switch e := e.(type) {
	case nil, *IntLit, *FloatLit, *VarRef:
	case *Index:
		ops.Add(countExpr(e.Idx, cur, info))
		ops.Loads++
		if cur != nil {
			recordAccess(cur, e.Arr, true)
		}
	case *Unary:
		ops.Add(countExpr(e.X, cur, info))
		if e.X.Kind().IsFloat() && e.Op == Neg {
			ops.FpAdd++
		} else {
			ops.IntAdd++
		}
	case *Binary:
		ops.Add(countExpr(e.L, cur, info))
		ops.Add(countExpr(e.R, cur, info))
		fp := e.L.Kind().IsFloat() || e.R.Kind().IsFloat()
		switch e.Op {
		case Mul:
			switch {
			case fp:
				ops.FpMul++
			case isConstOperand(e):
				// Multiplication by a compile-time constant lowers to
				// shift-add logic, not DSP multipliers.
				ops.IntAdd++
			default:
				ops.IntMul++
			}
		case Div, Rem:
			if fp {
				ops.FpDiv++
			} else {
				ops.IntDiv++
			}
		default:
			if fp {
				ops.FpAdd++
			} else {
				ops.IntAdd++
			}
		}
	case *Cast:
		ops.Add(countExpr(e.X, cur, info))
		if e.To.IsFloat() != e.X.Kind().IsFloat() {
			ops.IntAdd++ // int<->float converter
		}
	case *Cond:
		ops.Add(countExpr(e.C, cur, info))
		ops.Add(countExpr(e.T, cur, info))
		ops.Add(countExpr(e.F, cur, info))
		ops.Select++
	case *Call:
		for _, a := range e.Args {
			ops.Add(countExpr(a, cur, info))
		}
		switch e.Name {
		case "exp", "log", "pow", "sqrt":
			ops.Transc++
			if cur != nil {
				cur.HasTranscendental = true
			}
		case "min", "max", "abs", "fabs", "floor":
			ops.Select++
		}
	}
	return ops
}

// isConstOperand reports whether either operand of a binary op is an
// integer literal.
func isConstOperand(e *Binary) bool {
	if _, ok := e.L.(*IntLit); ok {
		return true
	}
	_, ok := e.R.(*IntLit)
	return ok
}

func exprMentionsVar(e Expr, name string) bool {
	switch e := e.(type) {
	case nil, *IntLit, *FloatLit:
		return false
	case *VarRef:
		return e.Name == name
	case *Index:
		return exprMentionsVar(e.Idx, name)
	case *Unary:
		return exprMentionsVar(e.X, name)
	case *Binary:
		return exprMentionsVar(e.L, name) || exprMentionsVar(e.R, name)
	case *Cast:
		return exprMentionsVar(e.X, name)
	case *Cond:
		return exprMentionsVar(e.C, name) || exprMentionsVar(e.T, name) || exprMentionsVar(e.F, name)
	case *Call:
		for _, a := range e.Args {
			if exprMentionsVar(a, name) {
				return true
			}
		}
	}
	return false
}

// detectCarriedArrays applies a conservative affine test: the loop
// carries a dependence through array A if A has both reads and writes in
// the subtree and some read/write index pair cannot be proven identical
// for a fixed iteration (distance zero). Arrays declared inside the loop
// body are iteration-local and exempt.
func detectCarriedArrays(li *LoopInfo) []string {
	local := map[string]bool{}
	collectLocalArrays(li.Loop.Body, local)
	var out []string
	accesses := collectIndexed(li)
	for arr, idxs := range accesses {
		if local[arr] {
			continue
		}
		hasRead, hasWrite := false, false
		for _, a := range idxs {
			if a.write {
				hasWrite = true
			} else {
				hasRead = true
			}
		}
		if !hasRead || !hasWrite {
			continue
		}
	pairLoop:
		for _, w := range idxs {
			if !w.write {
				continue
			}
			for _, r := range idxs {
				if r.write {
					continue
				}
				if carriedPair(li.Loop.Var, w.idx, r.idx) {
					out = append(out, arr)
					break pairLoop
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// collectLocalArrays gathers arrays declared anywhere inside a block.
func collectLocalArrays(b Block, out map[string]bool) {
	for _, s := range b {
		switch s := s.(type) {
		case *ArrDecl:
			out[s.Name] = true
		case *If:
			collectLocalArrays(s.Then, out)
			collectLocalArrays(s.Else, out)
		case *Loop:
			collectLocalArrays(s.Body, out)
		case *While:
			collectLocalArrays(s.Body, out)
		}
	}
}

type indexedAccess struct {
	idx   Expr
	write bool
}

func collectIndexed(li *LoopInfo) map[string][]indexedAccess {
	out := map[string][]indexedAccess{}
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *Index:
			out[e.Arr] = append(out[e.Arr], indexedAccess{idx: e.Idx})
			walkExpr(e.Idx)
		case *Unary:
			walkExpr(e.X)
		case *Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *Cast:
			walkExpr(e.X)
		case *Cond:
			walkExpr(e.C)
			walkExpr(e.T)
			walkExpr(e.F)
		case *Call:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walkBlock func(b Block)
	walkBlock = func(b Block) {
		for _, s := range b {
			switch s := s.(type) {
			case *Decl:
				walkExpr(s.Init)
			case *Assign:
				if ix, ok := s.LHS.(*Index); ok {
					out[ix.Arr] = append(out[ix.Arr], indexedAccess{idx: ix.Idx, write: true})
					walkExpr(ix.Idx)
				}
				walkExpr(s.RHS)
			case *If:
				walkExpr(s.Cond)
				walkBlock(s.Then)
				walkBlock(s.Else)
			case *Loop:
				walkExpr(s.Lo)
				walkExpr(s.Hi)
				walkBlock(s.Body)
			case *While:
				walkExpr(s.Cond)
				walkBlock(s.Body)
			case *Return:
				walkExpr(s.Val)
			}
		}
	}
	walkBlock(li.Loop.Body)
	return out
}

// carriedPair decides whether a write at index wi and read at index ri can
// conflict across different values of loop variable v. Indices are
// decomposed as coeff*v + const + sym; the pair is distance-zero (not
// carried) only when both are linear in v with equal coefficient, equal
// constant part, and identical symbolic remainder.
func carriedPair(v string, wi, ri Expr) bool {
	wc, wcst, wsym, wok := affine(wi, v)
	rc, rcst, rsym, rok := affine(ri, v)
	if !wok || !rok {
		return true // nonlinear: assume carried
	}
	if wc == 0 && rc == 0 {
		// Neither index depends on v: same fixed locations every
		// iteration -> read/write conflict across iterations.
		return true
	}
	if wc != rc || wsym != rsym {
		return true
	}
	return wcst != rcst // non-zero dependence distance
}

// Affine decomposes e as coeff*v + cst + sym, where sym is a canonical
// string for the non-constant remainder; ok=false when e is not linear in
// v. It is the affine machinery behind the carried-dependence test, also
// consumed by the static verifier (internal/lint) for interval analysis
// on array subscripts.
func Affine(e Expr, v string) (coeff, cst int64, sym string, ok bool) {
	return affine(e, v)
}

// affine decomposes e as coeff*v + cst + sym, where sym is a canonical
// string for the non-constant remainder; ok=false when e is not linear
// in v.
func affine(e Expr, v string) (coeff, cst int64, sym string, ok bool) {
	switch e := e.(type) {
	case *IntLit:
		return 0, e.Val, "", true
	case *VarRef:
		if e.Name == v {
			return 1, 0, "", true
		}
		return 0, 0, e.Name, true
	case *Binary:
		switch e.Op {
		case Add, Sub:
			lc, lcst, lsym, lok := affine(e.L, v)
			rc, rcst, rsym, rok := affine(e.R, v)
			if !lok || !rok {
				return 0, 0, "", false
			}
			if e.Op == Add {
				return lc + rc, lcst + rcst, joinSym(lsym, "+", rsym), true
			}
			return lc - rc, lcst - rcst, joinSym(lsym, "-", rsym), true
		case Mul:
			if lit, isLit := e.R.(*IntLit); isLit {
				lc, lcst, lsym, lok := affine(e.L, v)
				if !lok {
					return 0, 0, "", false
				}
				return lc * lit.Val, lcst * lit.Val, scaleSym(lsym, lit.Val), true
			}
			if lit, isLit := e.L.(*IntLit); isLit {
				rc, rcst, rsym, rok := affine(e.R, v)
				if !rok {
					return 0, 0, "", false
				}
				return rc * lit.Val, rcst * lit.Val, scaleSym(rsym, lit.Val), true
			}
			return 0, 0, "", false
		case Shl:
			if lit, isLit := e.R.(*IntLit); isLit {
				lc, lcst, lsym, lok := affine(e.L, v)
				if !lok {
					return 0, 0, "", false
				}
				f := int64(1) << uint(lit.Val&63)
				return lc * f, lcst * f, scaleSym(lsym, f), true
			}
			return 0, 0, "", false
		}
		return 0, 0, "", false
	case *Cast:
		return affine(e.X, v)
	}
	return 0, 0, "", false
}

func joinSym(a, op, b string) string {
	switch {
	case a == "" && b == "":
		return ""
	case a == "":
		if op == "-" {
			return "-" + b
		}
		return b
	case b == "":
		return a
	default:
		return a + op + b
	}
}

func scaleSym(s string, k int64) string {
	if s == "" {
		return ""
	}
	return fmt.Sprintf("(%s)*%d", s, k)
}
