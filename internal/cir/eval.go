package cir

import (
	"fmt"
	"math"
)

// Evaluator executes a Kernel on concrete buffers. It exists so that every
// stage of the S2FA pipeline can be validated by differential testing: the
// C kernel produced by the bytecode-to-C compiler — and every Merlin
// transformation of it — must compute exactly what the JVM computes.
type Evaluator struct {
	kernel  *Kernel
	scalars map[string]Value
	arrays  map[string][]Value
	// Steps counts executed statements, as a cheap sanity metric and an
	// infinite-loop guard for property tests.
	Steps    int64
	MaxSteps int64
}

type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// NewEvaluator prepares an evaluator for kernel k. MaxSteps defaults to
// 100M statements.
func NewEvaluator(k *Kernel) *Evaluator {
	return &Evaluator{kernel: k, MaxSteps: 100_000_000}
}

// Execute runs the kernel over n tasks. bufs maps each array parameter
// name to its backing storage (length >= n * Param.Length) and each scalar
// parameter to a single-element slice. Output buffers are written in
// place.
func (ev *Evaluator) Execute(n int, bufs map[string][]Value) error {
	ev.scalars = map[string]Value{"N": IntVal(Int, int64(n))}
	ev.arrays = map[string][]Value{}
	for i := range ev.kernel.Globals {
		g := &ev.kernel.Globals[i]
		ev.arrays[g.Name] = g.Data
	}
	for _, p := range ev.kernel.Params {
		buf, ok := bufs[p.Name]
		if !ok {
			return fmt.Errorf("cir: missing buffer for parameter %q", p.Name)
		}
		if p.IsArray {
			if want := n * p.Length; len(buf) < want {
				return fmt.Errorf("cir: buffer %q has %d elements, kernel needs %d", p.Name, len(buf), want)
			}
			ev.arrays[p.Name] = buf
		} else {
			if len(buf) != 1 {
				return fmt.Errorf("cir: scalar parameter %q needs a 1-element buffer", p.Name)
			}
			ev.scalars[p.Name] = buf[0].Convert(p.Elem)
		}
	}
	ev.Steps = 0
	_, err := ev.block(ev.kernel.Body)
	return err
}

func (ev *Evaluator) block(b Block) (ctrl, error) {
	for _, s := range b {
		c, err := ev.stmt(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (ev *Evaluator) stmt(s Stmt) (ctrl, error) {
	ev.Steps++
	if ev.Steps > ev.MaxSteps {
		return ctrlNone, fmt.Errorf("cir: step budget exceeded (%d)", ev.MaxSteps)
	}
	switch s := s.(type) {
	case *Decl:
		v := Value{K: s.K}
		if s.Init != nil {
			x, err := ev.expr(s.Init)
			if err != nil {
				return ctrlNone, err
			}
			v = x.Convert(s.K)
		}
		ev.scalars[s.Name] = v
		return ctrlNone, nil
	case *ArrDecl:
		arr := make([]Value, s.Len)
		for i := range arr {
			arr[i].K = s.Elem
		}
		ev.arrays[s.Name] = arr
		return ctrlNone, nil
	case *Assign:
		v, err := ev.expr(s.RHS)
		if err != nil {
			return ctrlNone, err
		}
		return ctrlNone, ev.store(s.LHS, v)
	case *If:
		c, err := ev.expr(s.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if c.IsTrue() {
			return ev.block(s.Then)
		}
		return ev.block(s.Else)
	case *Loop:
		lo, err := ev.expr(s.Lo)
		if err != nil {
			return ctrlNone, err
		}
		for i := lo.AsInt(); ; i += s.Step {
			hi, err := ev.expr(s.Hi)
			if err != nil {
				return ctrlNone, err
			}
			if i >= hi.AsInt() {
				break
			}
			ev.scalars[s.Var] = IntVal(Int, i)
			c, err := ev.block(s.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return ctrlReturn, nil
			}
		}
		return ctrlNone, nil
	case *While:
		for {
			c, err := ev.expr(s.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !c.IsTrue() {
				return ctrlNone, nil
			}
			cc, err := ev.block(s.Body)
			if err != nil {
				return ctrlNone, err
			}
			if cc == ctrlBreak {
				return ctrlNone, nil
			}
			if cc == ctrlReturn {
				return ctrlReturn, nil
			}
			ev.Steps++
			if ev.Steps > ev.MaxSteps {
				return ctrlNone, fmt.Errorf("cir: step budget exceeded in while loop")
			}
		}
	case *Break:
		return ctrlBreak, nil
	case *Continue:
		return ctrlContinue, nil
	case *Return:
		return ctrlReturn, nil
	}
	return ctrlNone, fmt.Errorf("cir: unknown statement %T", s)
}

func (ev *Evaluator) store(lhs Expr, v Value) error {
	switch lhs := lhs.(type) {
	case *VarRef:
		ev.scalars[lhs.Name] = v.Convert(lhs.K)
		return nil
	case *Index:
		arr, ok := ev.arrays[lhs.Arr]
		if !ok {
			return fmt.Errorf("cir: store to unknown array %q", lhs.Arr)
		}
		idx, err := ev.expr(lhs.Idx)
		if err != nil {
			return err
		}
		i := idx.AsInt()
		if i < 0 || i >= int64(len(arr)) {
			return fmt.Errorf("cir: index %d out of bounds for array %q (len %d)", i, lhs.Arr, len(arr))
		}
		arr[i] = v.Convert(lhs.K)
		return nil
	}
	return fmt.Errorf("cir: invalid assignment target %T", lhs)
}

func (ev *Evaluator) expr(e Expr) (Value, error) {
	switch e := e.(type) {
	case *IntLit:
		return IntVal(e.K, e.Val), nil
	case *FloatLit:
		return FloatVal(e.K, e.Val), nil
	case *VarRef:
		v, ok := ev.scalars[e.Name]
		if !ok {
			return Value{}, fmt.Errorf("cir: read of undefined variable %q", e.Name)
		}
		return v, nil
	case *Index:
		arr, ok := ev.arrays[e.Arr]
		if !ok {
			return Value{}, fmt.Errorf("cir: read of unknown array %q", e.Arr)
		}
		idx, err := ev.expr(e.Idx)
		if err != nil {
			return Value{}, err
		}
		i := idx.AsInt()
		if i < 0 || i >= int64(len(arr)) {
			return Value{}, fmt.Errorf("cir: index %d out of bounds for array %q (len %d)", i, e.Arr, len(arr))
		}
		return arr[i], nil
	case *Unary:
		x, err := ev.expr(e.X)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case Neg:
			if x.K.IsFloat() {
				return FloatVal(x.K, -x.F), nil
			}
			return IntVal(x.K, -x.I), nil
		case Not:
			return BoolVal(!x.IsTrue()), nil
		case BitNot:
			return IntVal(x.K, ^x.I), nil
		}
	case *Binary:
		if e.Op.IsLogical() {
			l, err := ev.expr(e.L)
			if err != nil {
				return Value{}, err
			}
			if e.Op == LAnd && !l.IsTrue() {
				return BoolVal(false), nil
			}
			if e.Op == LOr && l.IsTrue() {
				return BoolVal(true), nil
			}
			r, err := ev.expr(e.R)
			if err != nil {
				return Value{}, err
			}
			return BoolVal(r.IsTrue()), nil
		}
		l, err := ev.expr(e.L)
		if err != nil {
			return Value{}, err
		}
		r, err := ev.expr(e.R)
		if err != nil {
			return Value{}, err
		}
		return EvalBinary(e.Op, e.K, l, r)
	case *Cast:
		x, err := ev.expr(e.X)
		if err != nil {
			return Value{}, err
		}
		return x.Convert(e.To), nil
	case *Cond:
		c, err := ev.expr(e.C)
		if err != nil {
			return Value{}, err
		}
		if c.IsTrue() {
			return ev.expr(e.T)
		}
		return ev.expr(e.F)
	case *Call:
		return ev.call(e)
	}
	return Value{}, fmt.Errorf("cir: unknown expression %T", e)
}

// EvalBinary applies a non-logical binary operator to two scalar values
// with C semantics: comparisons yield Bool, arithmetic is performed at
// kind k. Shared by the IR evaluator and the JVM simulator so both sides
// of every differential test use identical scalar semantics.
func EvalBinary(op BinOp, k Kind, l, r Value) (Value, error) {
	if op.IsCompare() {
		var res bool
		if l.K.IsFloat() || r.K.IsFloat() {
			a, b := l.AsFloat(), r.AsFloat()
			res = compareFloat(op, a, b)
		} else {
			a, b := l.I, r.I
			res = compareInt(op, a, b)
		}
		return BoolVal(res), nil
	}
	if k.IsFloat() {
		a, b := l.AsFloat(), r.AsFloat()
		switch op {
		case Add:
			return FloatVal(k, a+b), nil
		case Sub:
			return FloatVal(k, a-b), nil
		case Mul:
			return FloatVal(k, a*b), nil
		case Div:
			return FloatVal(k, a/b), nil
		case Rem:
			return FloatVal(k, math.Mod(a, b)), nil
		}
		return Value{}, fmt.Errorf("cir: operator %s invalid for %s", op, k)
	}
	a, b := l.AsInt(), r.AsInt()
	switch op {
	case Add:
		return IntVal(k, a+b), nil
	case Sub:
		return IntVal(k, a-b), nil
	case Mul:
		return IntVal(k, a*b), nil
	case Div:
		if b == 0 {
			return Value{}, fmt.Errorf("cir: integer division by zero")
		}
		return IntVal(k, a/b), nil
	case Rem:
		if b == 0 {
			return Value{}, fmt.Errorf("cir: integer remainder by zero")
		}
		return IntVal(k, a%b), nil
	case And:
		return IntVal(k, a&b), nil
	case Or:
		return IntVal(k, a|b), nil
	case Xor:
		return IntVal(k, a^b), nil
	case Shl:
		return IntVal(k, a<<uint64(b&63)), nil
	case Shr:
		return IntVal(k, a>>uint64(b&63)), nil
	}
	return Value{}, fmt.Errorf("cir: unknown operator %s", op)
}

func compareInt(op BinOp, a, b int64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	}
	return false
}

func compareFloat(op BinOp, a, b float64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	}
	return false
}

// Intrinsics supported by Call nodes, matching the math methods the kdsl
// front-end accepts (java.lang.Math subset baked into S2FA's templates).
var Intrinsics = map[string]bool{
	"exp": true, "log": true, "sqrt": true, "fabs": true,
	"min": true, "max": true, "pow": true, "floor": true, "abs": true,
}

func (ev *Evaluator) call(e *Call) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := ev.expr(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return EvalIntrinsic(e.Name, e.K, args)
}

// EvalIntrinsic applies a math intrinsic to already-evaluated arguments.
// Shared by the IR evaluator and the JVM simulator so differential tests
// compare identical math semantics.
func EvalIntrinsic(name string, k Kind, args []Value) (Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("cir: intrinsic %s expects %d args, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "exp":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(k, math.Exp(args[0].AsFloat())), nil
	case "log":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(k, math.Log(args[0].AsFloat())), nil
	case "sqrt":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(k, math.Sqrt(args[0].AsFloat())), nil
	case "fabs":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(k, math.Abs(args[0].AsFloat())), nil
	case "abs":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if k.IsFloat() {
			return FloatVal(k, math.Abs(args[0].AsFloat())), nil
		}
		v := args[0].AsInt()
		if v < 0 {
			v = -v
		}
		return IntVal(k, v), nil
	case "floor":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return FloatVal(k, math.Floor(args[0].AsFloat())), nil
	case "pow":
		if err := need(2); err != nil {
			return Value{}, err
		}
		return FloatVal(k, math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
	case "min":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if k.IsFloat() {
			return FloatVal(k, math.Min(args[0].AsFloat(), args[1].AsFloat())), nil
		}
		return IntVal(k, min(args[0].AsInt(), args[1].AsInt())), nil
	case "max":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if k.IsFloat() {
			return FloatVal(k, math.Max(args[0].AsFloat(), args[1].AsFloat())), nil
		}
		return IntVal(k, max(args[0].AsInt(), args[1].AsInt())), nil
	}
	return Value{}, fmt.Errorf("cir: unknown intrinsic %q", name)
}
