package cir

import "strconv"

// BinOp enumerates binary operators. The set matches what the restricted
// JVM bytecode front-end can produce.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And // bitwise
	Or
	Xor
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	LAnd // logical, short-circuit
	LOr
)

// IsCompare reports whether the operator yields a Bool.
func (op BinOp) IsCompare() bool { return op >= Lt && op <= Ne }

// IsLogical reports whether the operator is a short-circuit logical op.
func (op BinOp) IsLogical() bool { return op == LAnd || op == LOr }

func (op BinOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Rem:
		return "%"
	case And:
		return "&"
	case Or:
		return "|"
	case Xor:
		return "^"
	case Shl:
		return "<<"
	case Shr:
		return ">>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "=="
	case Ne:
		return "!="
	case LAnd:
		return "&&"
	case LOr:
		return "||"
	}
	return "?"
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	Neg    UnOp = iota // arithmetic negation
	Not                // logical not
	BitNot             // bitwise complement
)

func (op UnOp) String() string {
	switch op {
	case Neg:
		return "-"
	case Not:
		return "!"
	case BitNot:
		return "~"
	}
	return "?"
}

// Expr is an IR expression node.
type Expr interface {
	// Kind is the static result type of the expression.
	Kind() Kind
	exprNode()
}

// IntLit is an integer literal of a specific kind.
type IntLit struct {
	K   Kind
	Val int64
}

// FloatLit is a floating-point literal of a specific kind.
type FloatLit struct {
	K   Kind
	Val float64
}

// VarRef reads a scalar variable (local, parameter, or loop index).
type VarRef struct {
	K    Kind
	Name string
}

// Pos is a kdsl source position carried from the bytecode line-number
// table through the bytecode-to-C compiler. The zero value means
// "synthesized" (no source position).
type Pos struct {
	Line, Col int
}

// Valid reports whether the position refers to real source.
func (p Pos) Valid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.Valid() {
		return "?"
	}
	if p.Col > 0 {
		return strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Col)
	}
	return strconv.Itoa(p.Line)
}

// Index reads or designates an element of a named array (parameter buffer,
// local static array, or constant global). Pos is the kdsl source
// position of the access (zero when the access was synthesized by a
// transformation).
type Index struct {
	K   Kind
	Arr string
	Idx Expr
	Pos Pos
}

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
}

// Binary applies a binary operator. K caches the result kind (Bool for
// comparisons, the promoted operand kind otherwise).
type Binary struct {
	K    Kind
	Op   BinOp
	L, R Expr
}

// Cast converts a value to another scalar kind with C semantics.
type Cast struct {
	To Kind
	X  Expr
}

// Cond is the C ternary operator c ? t : f.
type Cond struct {
	C, T, F Expr
}

// Call invokes a math intrinsic (exp, log, sqrt, fabs, min, max, pow).
// Intrinsics are the only calls that survive into HLS C: all user methods
// are inlined by the bytecode-to-C compiler (paper §3.2).
type Call struct {
	K    Kind
	Name string
	Args []Expr
}

// Kind implementations.
func (e *IntLit) Kind() Kind   { return e.K }
func (e *FloatLit) Kind() Kind { return e.K }
func (e *VarRef) Kind() Kind   { return e.K }
func (e *Index) Kind() Kind    { return e.K }
func (e *Unary) Kind() Kind {
	if e.Op == Not {
		return Bool
	}
	return e.X.Kind()
}
func (e *Binary) Kind() Kind { return e.K }
func (e *Cast) Kind() Kind   { return e.To }
func (e *Cond) Kind() Kind   { return e.T.Kind() }
func (e *Call) Kind() Kind   { return e.K }

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*VarRef) exprNode()   {}
func (*Index) exprNode()    {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Cast) exprNode()     {}
func (*Cond) exprNode()     {}
func (*Call) exprNode()     {}

// Stmt is an IR statement node.
type Stmt interface{ stmtNode() }

// Block is a statement sequence.
type Block []Stmt

// Decl declares a scalar local variable with an optional initializer.
type Decl struct {
	Name string
	K    Kind
	Init Expr // may be nil (zero-initialized, matching JVM locals)
}

// ArrDecl declares a statically sized local array. JVM `new` expressions
// with constant size compile to these (paper §3.3: no dynamic allocation
// on the FPGA).
type ArrDecl struct {
	Name string
	Elem Kind
	Len  int
}

// Assign stores RHS into LHS, which must be a *VarRef or *Index.
type Assign struct {
	LHS Expr
	RHS Expr
}

// If is a two-armed conditional; Else may be nil.
type If struct {
	Cond Expr
	Then Block
	Else Block
}

// PipelineMode selects the pipeline pragma state of a loop (Table 1:
// {on, off, flatten}). Flatten is the Merlin transformation that applies
// fine-grained pipelining to a nested loop by fully unrolling all
// sub-loops.
type PipelineMode uint8

// Pipeline pragma states.
const (
	PipeOff PipelineMode = iota
	PipeOn
	PipeFlatten
)

func (p PipelineMode) String() string {
	switch p {
	case PipeOff:
		return "off"
	case PipeOn:
		return "on"
	case PipeFlatten:
		return "flatten"
	}
	return "?"
}

// LoopOpt carries the design-space directives attached to one loop.
// The zero value means "no optimization": no tiling, no parallelism,
// pipeline off — the conservative area-driven configuration.
type LoopOpt struct {
	Tile     int // tile factor; 0 or 1 = untiled
	Parallel int // unroll/duplication factor; 0 or 1 = sequential
	Pipeline PipelineMode
}

// Loop is a canonical counted loop:
//
//	for (Var = Lo; Var < Hi; Var += Step) Body
//
// ID is a stable identifier assigned by the producing compiler and is the
// key used by the design space (internal/space) to address the loop.
type Loop struct {
	ID   string
	Var  string
	Lo   Expr
	Hi   Expr
	Step int64
	Body Block
	Opt  LoopOpt
	// Reduction names the scalar accumulated across iterations when the
	// loop implements a reduce pattern; empty otherwise. Set by the
	// bytecode-to-C compiler and used by the Merlin tree-reduction
	// transform.
	Reduction string
}

// While is a general condition-driven loop. It survives in the IR for
// completeness (the structurer can emit it for irreducible counting
// patterns) but takes no design-space directives: HLS treats it as
// sequential.
type While struct {
	Cond Expr
	Body Block
}

// Break exits the innermost loop.
type Break struct{}

// Continue advances the innermost loop.
type Continue struct{}

// Return exits the kernel function; Val may be nil for void.
type Return struct {
	Val Expr
}

func (*Decl) stmtNode()     {}
func (*ArrDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*Loop) stmtNode()     {}
func (*While) stmtNode()    {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Return) stmtNode()   {}

// Param describes one kernel interface buffer or scalar.
type Param struct {
	Name     string
	Elem     Kind
	IsArray  bool
	Length   int  // elements per task for array params
	IsOutput bool // written by the kernel
	// BitWidth is the off-chip interface bit-width (Table 1: 8 < 2^n <=
	// 512). Zero means the natural element width.
	BitWidth int
	// ValLo/ValHi bound every value the buffer provably carries at
	// runtime. The bytecode-to-C compiler seeds them from the abstract
	// interpreter's value-range facts (internal/absint); they are valid
	// only when ValKnown is set.
	ValLo, ValHi float64
	ValKnown     bool
}

// ValueBits is the narrowest standard storage width (8/16/32/64 bits)
// that provably holds every value the buffer carries. Without a proven
// range — or for float elements, whose mantissa precision a value range
// says nothing about — it is the element's natural width.
func (p Param) ValueBits() int {
	if !p.ValKnown || p.Elem.IsFloat() {
		return p.Elem.Bits()
	}
	for _, b := range []int{8, 16, 32} {
		if b >= p.Elem.Bits() {
			break
		}
		half := float64(int64(1) << (b - 1))
		if p.ValLo >= -half && p.ValHi <= half-1 {
			return b
		}
	}
	return p.Elem.Bits()
}

// Global is a read-only constant array available to the kernel (e.g. an
// AES S-box). These compile from `final static` fields of registered S2FA
// class templates.
type Global struct {
	Name string
	Elem Kind
	Data []Value
}

// Pattern is the RDD transformation semantics the kernel was derived from.
// The bytecode-to-C compiler inserts the outer task loop according to this
// pattern (paper §3.2), and the DSE partitioner uses it as a partition rule
// input (paper §4.3.1).
type Pattern uint8

// Supported RDD parallel patterns.
const (
	PatternMap Pattern = iota
	PatternReduce
)

func (p Pattern) String() string {
	if p == PatternReduce {
		return "reduce"
	}
	return "map"
}

// Kernel is a complete HLS C kernel: a single top-level function whose
// outermost loop iterates over tasks, with all user methods inlined.
type Kernel struct {
	Name    string
	Pattern Pattern
	Globals []Global
	Params  []Param // kernel buffer interface; N tasks is implicit
	Body    Block   // top-level statements; outermost Loop is the task loop
	// TaskLoopID is the ID of the compiler-inserted outermost task loop.
	TaskLoopID string
}

// Param returns the named parameter, or nil.
func (k *Kernel) Param(name string) *Param {
	for i := range k.Params {
		if k.Params[i].Name == name {
			return &k.Params[i]
		}
	}
	return nil
}

// Global returns the named global, or nil.
func (k *Kernel) Global(name string) *Global {
	for i := range k.Globals {
		if k.Globals[i].Name == name {
			return &k.Globals[i]
		}
	}
	return nil
}

// Loops returns all loops in the kernel in preorder.
func (k *Kernel) Loops() []*Loop {
	var out []*Loop
	var walk func(b Block)
	walk = func(b Block) {
		for _, s := range b {
			switch s := s.(type) {
			case *Loop:
				out = append(out, s)
				walk(s.Body)
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *While:
				walk(s.Body)
			}
		}
	}
	walk(k.Body)
	return out
}

// FindLoop returns the loop with the given ID, or nil.
func (k *Kernel) FindLoop(id string) *Loop {
	for _, l := range k.Loops() {
		if l.ID == id {
			return l
		}
	}
	return nil
}

// TripCount returns the constant trip count of the loop, or 0 if the
// bounds are not compile-time constants.
func (l *Loop) TripCount() int64 {
	lo, okLo := l.Lo.(*IntLit)
	hi, okHi := l.Hi.(*IntLit)
	if !okLo || !okHi || l.Step <= 0 {
		return 0
	}
	n := hi.Val - lo.Val
	if n <= 0 {
		return 0
	}
	return (n + l.Step - 1) / l.Step
}
