// Package cir defines the HLS-C intermediate representation used by S2FA.
//
// The bytecode-to-C compiler (internal/b2c) lowers JVM-style bytecode into
// this IR, the Merlin transformation library (internal/merlin) rewrites it,
// the HLS estimator (internal/hls) costs it, and the built-in evaluator
// executes it so that every lowering and transformation can be checked by
// differential testing against the JVM simulator.
//
// The IR deliberately mirrors the restricted C dialect that HLS tools
// accept as a kernel top: scalar value types, statically sized arrays,
// counted loops, and no dynamic allocation.
package cir

import "fmt"

// Kind enumerates the scalar value types of the IR. They correspond to the
// primitive JVM types that S2FA supports (paper §3.3) and to the native HLS
// C types they lower to.
type Kind uint8

// Scalar kinds, ordered roughly by width.
const (
	Void Kind = iota
	Bool
	Char  // 8-bit signed (Java byte / C char)
	Short // 16-bit signed
	Int   // 32-bit signed
	Long  // 64-bit signed
	Float
	Double
)

// Bits returns the storage width of the kind in bits.
func (k Kind) Bits() int {
	switch k {
	case Bool, Char:
		return 8
	case Short:
		return 16
	case Int, Float:
		return 32
	case Long, Double:
		return 64
	default:
		return 0
	}
}

// IsFloat reports whether the kind is a floating-point type.
func (k Kind) IsFloat() bool { return k == Float || k == Double }

// IsInteger reports whether the kind is an integral (or boolean) type.
func (k Kind) IsInteger() bool {
	switch k {
	case Bool, Char, Short, Int, Long:
		return true
	}
	return false
}

// CName returns the HLS C spelling of the kind.
func (k Kind) CName() string {
	switch k {
	case Void:
		return "void"
	case Bool:
		return "char"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Long:
		return "long"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return "?"
}

func (k Kind) String() string {
	switch k {
	case Void:
		return "void"
	case Bool:
		return "bool"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Long:
		return "long"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a dynamically typed scalar used by the IR evaluator. Integral
// kinds live in I, floating kinds in F.
type Value struct {
	K Kind
	I int64
	F float64
}

// IntVal builds an integer value of kind k, truncating to k's width.
func IntVal(k Kind, v int64) Value {
	return Value{K: k, I: truncInt(k, v)}
}

// FloatVal builds a floating value of kind k.
func FloatVal(k Kind, v float64) Value {
	if k == Float {
		v = float64(float32(v))
	}
	return Value{K: k, F: v}
}

// BoolVal builds a Bool value.
func BoolVal(b bool) Value {
	if b {
		return Value{K: Bool, I: 1}
	}
	return Value{K: Bool}
}

// AsFloat returns the value widened to float64.
func (v Value) AsFloat() float64 {
	if v.K.IsFloat() {
		return v.F
	}
	return float64(v.I)
}

// AsInt returns the value narrowed/truncated to int64.
func (v Value) AsInt() int64 {
	if v.K.IsFloat() {
		return int64(v.F)
	}
	return v.I
}

// IsTrue reports whether the value is non-zero.
func (v Value) IsTrue() bool {
	if v.K.IsFloat() {
		return v.F != 0
	}
	return v.I != 0
}

// Convert coerces the value to kind k with C conversion semantics
// (truncation for narrowing integer conversions, float32 rounding for
// Float).
func (v Value) Convert(k Kind) Value {
	if k.IsFloat() {
		return FloatVal(k, v.AsFloat())
	}
	return IntVal(k, v.AsInt())
}

func (v Value) String() string {
	if v.K.IsFloat() {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

// truncInt truncates v to the width of kind k, preserving C signed
// wraparound semantics.
func truncInt(k Kind, v int64) int64 {
	switch k {
	case Bool:
		if v != 0 {
			return 1
		}
		return 0
	case Char:
		return int64(int8(v))
	case Short:
		return int64(int16(v))
	case Int:
		return int64(int32(v))
	default:
		return v
	}
}
