package cir

// RenameLocals alpha-renames every name declared inside b (scalar decls,
// local arrays, and loop induction variables) by appending suffix, and
// rewrites all uses. Loop IDs are suffixed as well so duplicated bodies
// keep unique IDs. Names declared outside b are untouched.
func RenameLocals(b Block, suffix string) Block {
	declared := map[string]bool{}
	collectDeclared(b, declared)
	return renameBlock(b, declared, suffix)
}

func collectDeclared(b Block, out map[string]bool) {
	for _, s := range b {
		switch s := s.(type) {
		case *Decl:
			out[s.Name] = true
		case *ArrDecl:
			out[s.Name] = true
		case *Loop:
			out[s.Var] = true
			collectDeclared(s.Body, out)
		case *If:
			collectDeclared(s.Then, out)
			collectDeclared(s.Else, out)
		case *While:
			collectDeclared(s.Body, out)
		}
	}
}

func renameBlock(b Block, names map[string]bool, suffix string) Block {
	out := make(Block, len(b))
	for i, s := range b {
		out[i] = renameStmt(s, names, suffix)
	}
	return out
}

func renameStmt(s Stmt, names map[string]bool, suffix string) Stmt {
	ren := func(n string) string {
		if names[n] {
			return n + suffix
		}
		return n
	}
	switch s := s.(type) {
	case *Decl:
		return &Decl{Name: ren(s.Name), K: s.K, Init: renameExpr(s.Init, names, suffix)}
	case *ArrDecl:
		return &ArrDecl{Name: ren(s.Name), Elem: s.Elem, Len: s.Len}
	case *Assign:
		return &Assign{
			LHS: renameExpr(s.LHS, names, suffix),
			RHS: renameExpr(s.RHS, names, suffix),
		}
	case *If:
		return &If{
			Cond: renameExpr(s.Cond, names, suffix),
			Then: renameBlock(s.Then, names, suffix),
			Else: renameBlock(s.Else, names, suffix),
		}
	case *Loop:
		return &Loop{
			ID:        s.ID + suffix,
			Var:       ren(s.Var),
			Lo:        renameExpr(s.Lo, names, suffix),
			Hi:        renameExpr(s.Hi, names, suffix),
			Step:      s.Step,
			Body:      renameBlock(s.Body, names, suffix),
			Opt:       s.Opt,
			Reduction: ren(s.Reduction),
		}
	case *While:
		return &While{
			Cond: renameExpr(s.Cond, names, suffix),
			Body: renameBlock(s.Body, names, suffix),
		}
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	case *Return:
		return &Return{Val: renameExpr(s.Val, names, suffix)}
	}
	return nil
}

func renameExpr(e Expr, names map[string]bool, suffix string) Expr {
	ren := func(n string) string {
		if names[n] {
			return n + suffix
		}
		return n
	}
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit, *FloatLit:
		return CloneExpr(e)
	case *VarRef:
		return &VarRef{K: e.K, Name: ren(e.Name)}
	case *Index:
		return &Index{K: e.K, Arr: ren(e.Arr), Idx: renameExpr(e.Idx, names, suffix)}
	case *Unary:
		return &Unary{Op: e.Op, X: renameExpr(e.X, names, suffix)}
	case *Binary:
		return &Binary{K: e.K, Op: e.Op, L: renameExpr(e.L, names, suffix), R: renameExpr(e.R, names, suffix)}
	case *Cast:
		return &Cast{To: e.To, X: renameExpr(e.X, names, suffix)}
	case *Cond:
		return &Cond{
			C: renameExpr(e.C, names, suffix),
			T: renameExpr(e.T, names, suffix),
			F: renameExpr(e.F, names, suffix),
		}
	case *Call:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = renameExpr(a, names, suffix)
		}
		return &Call{K: e.K, Name: e.Name, Args: args}
	}
	return nil
}
