package cir

import (
	"strings"
	"testing"
)

// buildKernel assembles a one-parameter-in, one-out map kernel whose task
// body is given, for evaluator tests.
func buildKernel(body Block, inLen, outLen int) *Kernel {
	task := &Loop{
		ID:   "L0",
		Var:  "_task",
		Lo:   &IntLit{K: Int, Val: 0},
		Hi:   &VarRef{K: Int, Name: "N"},
		Step: 1,
		Body: body,
	}
	return &Kernel{
		Name:       "t",
		Pattern:    PatternMap,
		TaskLoopID: "L0",
		Params: []Param{
			{Name: "in", Elem: Int, IsArray: true, Length: inLen},
			{Name: "out", Elem: Int, IsArray: true, Length: outLen, IsOutput: true},
		},
		Body: Block{task},
	}
}

func intBuf(vals ...int64) []Value {
	out := make([]Value, len(vals))
	for i, v := range vals {
		out[i] = IntVal(Int, v)
	}
	return out
}

func run(t *testing.T, k *Kernel, n int, in []Value, outLen int) []Value {
	t.Helper()
	out := make([]Value, n*outLen)
	for i := range out {
		out[i].K = Int
	}
	ev := NewEvaluator(k)
	if err := ev.Execute(n, map[string][]Value{"in": in, "out": out}); err != nil {
		t.Fatalf("execute: %v", err)
	}
	return out
}

// taskIdx builds in[_task] / out[_task] expressions.
func taskIdx(arr string) *Index {
	return &Index{K: Int, Arr: arr, Idx: &VarRef{K: Int, Name: "_task"}}
}

func TestEvaluatorCopyKernel(t *testing.T) {
	k := buildKernel(Block{&Assign{LHS: taskIdx("out"), RHS: taskIdx("in")}}, 1, 1)
	out := run(t, k, 3, intBuf(10, 20, 30), 1)
	for i, want := range []int64{10, 20, 30} {
		if out[i].I != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i].I, want)
		}
	}
}

func TestEvaluatorIfElse(t *testing.T) {
	// out = in > 0 ? 1 : -1
	body := Block{&If{
		Cond: &Binary{K: Bool, Op: Gt, L: taskIdx("in"), R: &IntLit{K: Int, Val: 0}},
		Then: Block{&Assign{LHS: taskIdx("out"), RHS: &IntLit{K: Int, Val: 1}}},
		Else: Block{&Assign{LHS: taskIdx("out"), RHS: &IntLit{K: Int, Val: -1}}},
	}}
	out := run(t, buildKernel(body, 1, 1), 3, intBuf(5, -5, 0), 1)
	for i, want := range []int64{1, -1, -1} {
		if out[i].I != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i].I, want)
		}
	}
}

func TestEvaluatorNestedLoopsAndLocals(t *testing.T) {
	// acc = sum of 0..in-1 via inner loop with local array staging.
	inner := &Loop{
		ID: "L1", Var: "i",
		Lo: &IntLit{K: Int, Val: 0}, Hi: taskIdx("in"), Step: 1,
		Body: Block{&Assign{
			LHS: &VarRef{K: Int, Name: "acc"},
			RHS: &Binary{K: Int, Op: Add, L: &VarRef{K: Int, Name: "acc"}, R: &VarRef{K: Int, Name: "i"}},
		}},
	}
	body := Block{
		&Decl{Name: "acc", K: Int},
		inner,
		&Assign{LHS: taskIdx("out"), RHS: &VarRef{K: Int, Name: "acc"}},
	}
	out := run(t, buildKernel(body, 1, 1), 2, intBuf(5, 3), 1)
	if out[0].I != 10 || out[1].I != 3 {
		t.Errorf("sums = %d, %d; want 10, 3", out[0].I, out[1].I)
	}
}

func TestEvaluatorWhileBreak(t *testing.T) {
	// Count doublings until >= in, with a break guard.
	body := Block{
		&Decl{Name: "v", K: Int, Init: &IntLit{K: Int, Val: 1}},
		&Decl{Name: "c", K: Int},
		&While{
			Cond: &IntLit{K: Bool, Val: 1},
			Body: Block{
				&If{
					Cond: &Binary{K: Bool, Op: Ge, L: &VarRef{K: Int, Name: "v"}, R: taskIdx("in")},
					Then: Block{&Break{}},
				},
				&Assign{LHS: &VarRef{K: Int, Name: "v"},
					RHS: &Binary{K: Int, Op: Mul, L: &VarRef{K: Int, Name: "v"}, R: &IntLit{K: Int, Val: 2}}},
				&Assign{LHS: &VarRef{K: Int, Name: "c"},
					RHS: &Binary{K: Int, Op: Add, L: &VarRef{K: Int, Name: "c"}, R: &IntLit{K: Int, Val: 1}}},
			},
		},
		&Assign{LHS: taskIdx("out"), RHS: &VarRef{K: Int, Name: "c"}},
	}
	out := run(t, buildKernel(body, 1, 1), 3, intBuf(1, 8, 9), 1)
	for i, want := range []int64{0, 3, 4} {
		if out[i].I != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i].I, want)
		}
	}
}

func TestEvaluatorLocalArrayZeroed(t *testing.T) {
	// Local arrays are zero-initialized per declaration (JVM semantics).
	body := Block{
		&ArrDecl{Name: "tmp", Elem: Int, Len: 4},
		&Assign{LHS: taskIdx("out"), RHS: &Index{K: Int, Arr: "tmp", Idx: &IntLit{K: Int, Val: 2}}},
	}
	out := run(t, buildKernel(body, 1, 1), 1, intBuf(0), 1)
	if out[0].I != 0 {
		t.Errorf("local array not zeroed: %d", out[0].I)
	}
}

func TestEvaluatorErrors(t *testing.T) {
	t.Run("out of bounds", func(t *testing.T) {
		body := Block{&Assign{
			LHS: &Index{K: Int, Arr: "out", Idx: &IntLit{K: Int, Val: 99}},
			RHS: &IntLit{K: Int, Val: 1},
		}}
		k := buildKernel(body, 1, 1)
		ev := NewEvaluator(k)
		err := ev.Execute(1, map[string][]Value{"in": intBuf(0), "out": intBuf(0)})
		if err == nil || !strings.Contains(err.Error(), "out of bounds") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("missing buffer", func(t *testing.T) {
		k := buildKernel(Block{}, 1, 1)
		ev := NewEvaluator(k)
		if err := ev.Execute(1, map[string][]Value{"in": intBuf(0)}); err == nil {
			t.Error("missing out buffer accepted")
		}
	})
	t.Run("short buffer", func(t *testing.T) {
		k := buildKernel(Block{}, 4, 1)
		ev := NewEvaluator(k)
		err := ev.Execute(2, map[string][]Value{"in": intBuf(0, 0), "out": intBuf(0, 0)})
		if err == nil {
			t.Error("short in buffer accepted")
		}
	})
	t.Run("infinite loop guarded", func(t *testing.T) {
		body := Block{&While{Cond: &IntLit{K: Bool, Val: 1}, Body: Block{
			&Assign{LHS: &VarRef{K: Int, Name: "x"}, RHS: &IntLit{K: Int, Val: 1}},
		}}}
		k := buildKernel(append(Block{&Decl{Name: "x", K: Int}}, body...), 1, 1)
		ev := NewEvaluator(k)
		ev.MaxSteps = 10_000
		err := ev.Execute(1, map[string][]Value{"in": intBuf(0), "out": intBuf(0)})
		if err == nil || !strings.Contains(err.Error(), "budget") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("undefined variable", func(t *testing.T) {
		body := Block{&Assign{LHS: taskIdx("out"), RHS: &VarRef{K: Int, Name: "ghost"}}}
		k := buildKernel(body, 1, 1)
		ev := NewEvaluator(k)
		if err := ev.Execute(1, map[string][]Value{"in": intBuf(0), "out": intBuf(0)}); err == nil {
			t.Error("undefined variable accepted")
		}
	})
}

func TestEvaluatorScalarParam(t *testing.T) {
	k := buildKernel(Block{&Assign{LHS: taskIdx("out"), RHS: &VarRef{K: Int, Name: "bias"}}}, 1, 1)
	k.Params = append(k.Params, Param{Name: "bias", Elem: Int})
	out := make([]Value, 2)
	ev := NewEvaluator(k)
	err := ev.Execute(2, map[string][]Value{
		"in": intBuf(0, 0), "out": out, "bias": intBuf(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != 42 || out[1].I != 42 {
		t.Errorf("bias not applied: %v", out)
	}
}

func TestEvaluatorShortCircuit(t *testing.T) {
	// (in != 0) && (10/in > 1): short-circuit must avoid division by zero.
	cond := &Binary{K: Bool, Op: LAnd,
		L: &Binary{K: Bool, Op: Ne, L: taskIdx("in"), R: &IntLit{K: Int, Val: 0}},
		R: &Binary{K: Bool, Op: Gt,
			L: &Binary{K: Int, Op: Div, L: &IntLit{K: Int, Val: 10}, R: taskIdx("in")},
			R: &IntLit{K: Int, Val: 1}},
	}
	body := Block{&If{
		Cond: cond,
		Then: Block{&Assign{LHS: taskIdx("out"), RHS: &IntLit{K: Int, Val: 1}}},
	}}
	out := run(t, buildKernel(body, 1, 1), 2, intBuf(0, 2), 1)
	if out[0].I != 0 || out[1].I != 1 {
		t.Errorf("short-circuit results: %v", out)
	}
}

func TestEvaluatorTernaryAndCast(t *testing.T) {
	body := Block{&Assign{
		LHS: taskIdx("out"),
		RHS: &Cond{
			C: &Binary{K: Bool, Op: Lt, L: taskIdx("in"), R: &IntLit{K: Int, Val: 0}},
			T: &Cast{To: Int, X: &FloatLit{K: Double, Val: 2.9}},
			F: &IntLit{K: Int, Val: 7},
		},
	}}
	out := run(t, buildKernel(body, 1, 1), 2, intBuf(-1, 1), 1)
	if out[0].I != 2 || out[1].I != 7 {
		t.Errorf("ternary/cast results: %v", out)
	}
}
