package cir

import "testing"

// nestKernel builds: task loop > i loop (trip 16) > j loop (trip 8) with
// a scalar fp accumulation carried by the j loop.
func nestKernel() *Kernel {
	j := &Loop{
		ID: "L2", Var: "j",
		Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 8}, Step: 1,
		Body: Block{&Assign{
			LHS: &VarRef{K: Double, Name: "acc"},
			RHS: &Binary{K: Double, Op: Add,
				L: &VarRef{K: Double, Name: "acc"},
				R: &Index{K: Double, Arr: "in", Idx: &VarRef{K: Int, Name: "j"}}},
		}},
	}
	i := &Loop{
		ID: "L1", Var: "i",
		Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 16}, Step: 1,
		Body: Block{j},
	}
	task := &Loop{
		ID: "L0", Var: "_task",
		Lo: &IntLit{K: Int, Val: 0}, Hi: &VarRef{K: Int, Name: "N"}, Step: 1,
		Body: Block{
			&Decl{Name: "acc", K: Double},
			i,
			&Assign{
				LHS: &Index{K: Double, Arr: "out", Idx: &VarRef{K: Int, Name: "_task"}},
				RHS: &VarRef{K: Double, Name: "acc"},
			},
		},
	}
	return &Kernel{
		Name: "nest", Pattern: PatternMap, TaskLoopID: "L0",
		Params: []Param{
			{Name: "in", Elem: Double, IsArray: true, Length: 8},
			{Name: "out", Elem: Double, IsArray: true, Length: 1, IsOutput: true},
		},
		Body: Block{task},
	}
}

func TestAnalyzeLoopTree(t *testing.T) {
	info := Analyze(nestKernel())
	if len(info.All) != 3 {
		t.Fatalf("loops = %d, want 3", len(info.All))
	}
	if len(info.Roots) != 1 || info.Roots[0].Loop.ID != "L0" {
		t.Fatal("root is not the task loop")
	}
	l0, l1, l2 := info.ByID["L0"], info.ByID["L1"], info.ByID["L2"]
	if l0.Depth != 0 || l1.Depth != 1 || l2.Depth != 2 {
		t.Errorf("depths = %d %d %d", l0.Depth, l1.Depth, l2.Depth)
	}
	if l0.Trip != 0 { // runtime bound
		t.Errorf("task trip = %d, want 0 (unknown)", l0.Trip)
	}
	if l1.Trip != 16 || l2.Trip != 8 {
		t.Errorf("trips = %d, %d", l1.Trip, l2.Trip)
	}
	if info.MaxDepth != 2 {
		t.Errorf("max depth = %d", info.MaxDepth)
	}
	if shape := info.LoopShape(); shape != "1(2(3))" {
		t.Errorf("shape = %q", shape)
	}
}

func TestAnalyzeScalarRecurrence(t *testing.T) {
	info := Analyze(nestKernel())
	l2 := info.ByID["L2"]
	if len(l2.ScalarRec) != 1 || l2.ScalarRec[0] != "acc" {
		t.Fatalf("L2 recurrences = %v", l2.ScalarRec)
	}
	if !l2.Carried() {
		t.Error("L2 should be carried")
	}
	// acc is declared inside the task loop body, so the task loop does
	// NOT carry it: each task re-initializes its accumulator.
	l0 := info.ByID["L0"]
	if len(l0.ScalarRec) != 0 {
		t.Errorf("task loop recurrences = %v, want none", l0.ScalarRec)
	}
	// Recurrence ops include the fp add.
	if l2.RecOps.FpAdd == 0 {
		t.Error("recurrence chain has no fp add")
	}
}

func TestAnalyzeOpCounts(t *testing.T) {
	info := Analyze(nestKernel())
	l2 := info.ByID["L2"]
	if l2.BodyOps.FpAdd < 1 || l2.BodyOps.Loads < 1 {
		t.Errorf("L2 body ops = %+v", l2.BodyOps)
	}
	l0 := info.ByID["L0"]
	if l0.SubtreeOps.FpAdd < l2.BodyOps.FpAdd {
		t.Error("subtree ops should include descendants")
	}
	if l0.BodyOps.Stores < 1 {
		t.Errorf("task body stores = %d", l0.BodyOps.Stores)
	}
}

// stencil kernel: H written at [i] and read at [i-1] within the loop ->
// loop-carried array dependence.
func stencilLoop(readOffset int64) *Loop {
	return &Loop{
		ID: "L1", Var: "i",
		Lo: &IntLit{K: Int, Val: 1}, Hi: &IntLit{K: Int, Val: 64}, Step: 1,
		Body: Block{&Assign{
			LHS: &Index{K: Int, Arr: "H", Idx: &VarRef{K: Int, Name: "i"}},
			RHS: &Index{K: Int, Arr: "H", Idx: &Binary{K: Int, Op: Add,
				L: &VarRef{K: Int, Name: "i"}, R: &IntLit{K: Int, Val: readOffset}}},
		}},
	}
}

func TestArrayCarriedDetection(t *testing.T) {
	t.Run("distance one is carried", func(t *testing.T) {
		k := &Kernel{Name: "s", TaskLoopID: "L0", Body: Block{
			&ArrDecl{Name: "H", Elem: Int, Len: 64},
			stencilLoop(-1),
		}}
		info := Analyze(k)
		li := info.ByID["L1"]
		if !li.ArrayCarried || len(li.CarriedArrays) != 1 || li.CarriedArrays[0] != "H" {
			t.Errorf("carried = %v %v", li.ArrayCarried, li.CarriedArrays)
		}
	})
	t.Run("distance zero is not carried", func(t *testing.T) {
		k := &Kernel{Name: "s", TaskLoopID: "L0", Body: Block{
			&ArrDecl{Name: "H", Elem: Int, Len: 64},
			stencilLoop(0),
		}}
		info := Analyze(k)
		if info.ByID["L1"].ArrayCarried {
			t.Error("read-modify-write of the same element flagged as carried")
		}
	})
	t.Run("iteration-local arrays exempt", func(t *testing.T) {
		// The array is declared INSIDE the loop body: fresh per
		// iteration, no dependence can cross iterations.
		inner := stencilLoop(-1)
		outer := &Loop{
			ID: "L9", Var: "t",
			Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 4}, Step: 1,
			Body: Block{&ArrDecl{Name: "H", Elem: Int, Len: 64}, inner},
		}
		k := &Kernel{Name: "s", TaskLoopID: "L9", Body: Block{outer}}
		info := Analyze(k)
		if info.ByID["L9"].ArrayCarried {
			t.Error("outer loop flagged carried through its own iteration-local array")
		}
		if !info.ByID["L1"].ArrayCarried {
			t.Error("inner loop should still be carried")
		}
	})
	t.Run("fixed-location accumulator is carried", func(t *testing.T) {
		l := &Loop{
			ID: "L1", Var: "i",
			Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 8}, Step: 1,
			Body: Block{&Assign{
				LHS: &Index{K: Int, Arr: "H", Idx: &IntLit{K: Int, Val: 0}},
				RHS: &Binary{K: Int, Op: Add,
					L: &Index{K: Int, Arr: "H", Idx: &IntLit{K: Int, Val: 0}},
					R: &VarRef{K: Int, Name: "i"}},
			}},
		}
		k := &Kernel{Name: "s", TaskLoopID: "x", Body: Block{&ArrDecl{Name: "H", Elem: Int, Len: 4}, l}}
		info := Analyze(k)
		if !info.ByID["L1"].ArrayCarried {
			t.Error("H[0] accumulation not flagged as carried")
		}
	})
}

func TestAffineDecomposition(t *testing.T) {
	// i*129 + (j-1): linear in i with coeff 129; linear in j with coeff 1.
	e := &Binary{K: Int, Op: Add,
		L: &Binary{K: Int, Op: Mul, L: &VarRef{K: Int, Name: "i"}, R: &IntLit{K: Int, Val: 129}},
		R: &Binary{K: Int, Op: Sub, L: &VarRef{K: Int, Name: "j"}, R: &IntLit{K: Int, Val: 1}},
	}
	c, cst, _, ok := affine(e, "i")
	if !ok || c != 129 || cst != -1 {
		t.Errorf("i: coeff=%d cst=%d ok=%v", c, cst, ok)
	}
	c, cst, _, ok = affine(e, "j")
	if !ok || c != 1 || cst != -1 {
		t.Errorf("j: coeff=%d cst=%d ok=%v", c, cst, ok)
	}
	c, _, sym, ok := affine(e, "k")
	if !ok || c != 0 || sym == "" {
		t.Errorf("k: coeff=%d sym=%q ok=%v", c, sym, ok)
	}
	// Nonlinear index: i*i.
	nl := &Binary{K: Int, Op: Mul, L: &VarRef{K: Int, Name: "i"}, R: &VarRef{K: Int, Name: "i"}}
	if _, _, _, ok := affine(nl, "i"); ok {
		t.Error("i*i reported linear")
	}
}

func TestConstMulCountsAsShiftAdd(t *testing.T) {
	// Multiplication by a literal must not consume DSP-class IntMul.
	body := Block{&Assign{
		LHS: &VarRef{K: Int, Name: "x"},
		RHS: &Binary{K: Int, Op: Mul, L: &VarRef{K: Int, Name: "i"}, R: &IntLit{K: Int, Val: 129}},
	}}
	l := &Loop{ID: "L1", Var: "i", Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 4}, Step: 1,
		Body: append(Block{&Decl{Name: "x", K: Int}}, body...)}
	k := &Kernel{Name: "m", TaskLoopID: "L1", Body: Block{l}}
	info := Analyze(k)
	li := info.ByID["L1"]
	if li.BodyOps.IntMul != 0 {
		t.Errorf("const mul counted as IntMul: %+v", li.BodyOps)
	}
	// Variable-by-variable multiply does count.
	body2 := Block{
		&Decl{Name: "x", K: Int},
		&Assign{
			LHS: &VarRef{K: Int, Name: "x"},
			RHS: &Binary{K: Int, Op: Mul, L: &VarRef{K: Int, Name: "i"}, R: &VarRef{K: Int, Name: "x"}},
		}}
	l2 := &Loop{ID: "L1", Var: "i", Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 4}, Step: 1, Body: body2}
	info2 := Analyze(&Kernel{Name: "m", TaskLoopID: "L1", Body: Block{l2}})
	if info2.ByID["L1"].BodyOps.IntMul != 1 {
		t.Errorf("var mul not counted: %+v", info2.ByID["L1"].BodyOps)
	}
}

func TestTranscendentalFlag(t *testing.T) {
	l := &Loop{ID: "L1", Var: "i", Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 4}, Step: 1,
		Body: Block{
			&Decl{Name: "x", K: Double,
				Init: &Call{K: Double, Name: "exp", Args: []Expr{&FloatLit{K: Double, Val: 1}}}},
		}}
	outer := &Loop{ID: "L0", Var: "t", Lo: &IntLit{K: Int, Val: 0}, Hi: &IntLit{K: Int, Val: 2}, Step: 1,
		Body: Block{l}}
	info := Analyze(&Kernel{Name: "e", TaskLoopID: "L0", Body: Block{outer}})
	if !info.ByID["L1"].HasTranscendental {
		t.Error("inner loop transcendental not flagged")
	}
	if !info.ByID["L0"].HasTranscendental {
		t.Error("transcendental flag did not propagate to the outer loop")
	}
}

func TestLocalArraysInventory(t *testing.T) {
	k := &Kernel{Name: "a", TaskLoopID: "x", Body: Block{
		&ArrDecl{Name: "buf", Elem: Double, Len: 100},
	}}
	info := Analyze(k)
	if info.LocalArrays["buf"] != 800 {
		t.Errorf("buf bytes = %d, want 800", info.LocalArrays["buf"])
	}
}

func TestTripCount(t *testing.T) {
	cases := []struct {
		lo, hi int64
		step   int64
		want   int64
	}{
		{0, 16, 1, 16},
		{1, 129, 1, 128},
		{0, 10, 3, 4},
		{5, 5, 1, 0},
		{10, 5, 1, 0},
	}
	for _, c := range cases {
		l := &Loop{Lo: &IntLit{K: Int, Val: c.lo}, Hi: &IntLit{K: Int, Val: c.hi}, Step: c.step}
		if got := l.TripCount(); got != c.want {
			t.Errorf("trip(%d,%d,%d) = %d, want %d", c.lo, c.hi, c.step, got, c.want)
		}
	}
	dyn := &Loop{Lo: &IntLit{K: Int, Val: 0}, Hi: &VarRef{K: Int, Name: "N"}, Step: 1}
	if dyn.TripCount() != 0 {
		t.Error("dynamic bound should have trip 0")
	}
}
