package cir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindBits(t *testing.T) {
	cases := map[Kind]int{
		Bool: 8, Char: 8, Short: 16, Int: 32, Long: 64, Float: 32, Double: 64, Void: 0,
	}
	for k, want := range cases {
		if got := k.Bits(); got != want {
			t.Errorf("%s.Bits() = %d, want %d", k, got, want)
		}
	}
}

func TestKindClasses(t *testing.T) {
	for _, k := range []Kind{Bool, Char, Short, Int, Long} {
		if !k.IsInteger() || k.IsFloat() {
			t.Errorf("%s should be integer", k)
		}
	}
	for _, k := range []Kind{Float, Double} {
		if k.IsInteger() || !k.IsFloat() {
			t.Errorf("%s should be float", k)
		}
	}
	if Void.IsInteger() || Void.IsFloat() {
		t.Error("Void is neither integer nor float")
	}
}

func TestIntValTruncation(t *testing.T) {
	cases := []struct {
		k    Kind
		in   int64
		want int64
	}{
		{Char, 255, -1},
		{Char, 128, -128},
		{Char, 127, 127},
		{Short, 65535, -1},
		{Short, 32768, -32768},
		{Int, 1 << 40, 0},
		{Int, math.MaxInt32 + 1, math.MinInt32},
		{Long, math.MaxInt64, math.MaxInt64},
		{Bool, 42, 1},
		{Bool, 0, 0},
	}
	for _, c := range cases {
		if got := IntVal(c.k, c.in).I; got != c.want {
			t.Errorf("IntVal(%s, %d) = %d, want %d", c.k, c.in, got, c.want)
		}
	}
}

func TestFloatValSinglePrecision(t *testing.T) {
	v := FloatVal(Float, 1.0000000001)
	if v.F != float64(float32(1.0000000001)) {
		t.Errorf("Float value not rounded to float32: %v", v.F)
	}
	d := FloatVal(Double, 1.0000000001)
	if d.F != 1.0000000001 {
		t.Errorf("Double value altered: %v", d.F)
	}
}

func TestValueConvert(t *testing.T) {
	v := FloatVal(Double, 300.7)
	if got := v.Convert(Char).I; got != 44 { // 300 mod 256 = 44
		t.Errorf("Double->Char = %d", got)
	}
	i := IntVal(Int, 3)
	if got := i.Convert(Double).F; got != 3.0 {
		t.Errorf("Int->Double = %v", got)
	}
	if !IntVal(Int, 2).IsTrue() || IntVal(Int, 0).IsTrue() {
		t.Error("IsTrue on ints")
	}
	if !FloatVal(Double, -0.5).IsTrue() || FloatVal(Double, 0).IsTrue() {
		t.Error("IsTrue on floats")
	}
}

// Property: integer truncation is idempotent — converting twice equals
// converting once.
func TestTruncationIdempotent(t *testing.T) {
	f := func(x int64) bool {
		for _, k := range []Kind{Bool, Char, Short, Int, Long} {
			once := IntVal(k, x)
			twice := IntVal(k, once.I)
			if once.I != twice.I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Convert to a kind yields a value whose re-conversion to the
// same kind is identity.
func TestConvertIdempotent(t *testing.T) {
	f := func(x float64) bool {
		for _, k := range []Kind{Char, Short, Int, Long, Float, Double} {
			v := FloatVal(Double, x).Convert(k)
			if v.Convert(k) != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: EvalBinary add/sub round-trip for in-range int32 values.
func TestEvalBinaryAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		sum, err := EvalBinary(Add, Int, IntVal(Int, int64(a)), IntVal(Int, int64(b)))
		if err != nil {
			return false
		}
		back, err := EvalBinary(Sub, Int, sum, IntVal(Int, int64(b)))
		if err != nil {
			return false
		}
		return back.I == IntVal(Int, int64(a)).I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalBinaryComparisons(t *testing.T) {
	lt, _ := EvalBinary(Lt, Int, IntVal(Int, 1), IntVal(Int, 2))
	if !lt.IsTrue() {
		t.Error("1 < 2 failed")
	}
	ge, _ := EvalBinary(Ge, Double, FloatVal(Double, 2.5), FloatVal(Double, 2.5))
	if !ge.IsTrue() {
		t.Error("2.5 >= 2.5 failed")
	}
	// Mixed int/float comparison promotes to float.
	gt, _ := EvalBinary(Gt, Int, FloatVal(Double, 1.5), IntVal(Int, 1))
	if !gt.IsTrue() {
		t.Error("1.5 > 1 failed")
	}
}

func TestEvalBinaryDivisionByZero(t *testing.T) {
	if _, err := EvalBinary(Div, Int, IntVal(Int, 1), IntVal(Int, 0)); err == nil {
		t.Error("integer division by zero accepted")
	}
	if _, err := EvalBinary(Rem, Int, IntVal(Int, 1), IntVal(Int, 0)); err == nil {
		t.Error("integer remainder by zero accepted")
	}
	// Float division by zero is IEEE Inf, not an error.
	v, err := EvalBinary(Div, Double, FloatVal(Double, 1), FloatVal(Double, 0))
	if err != nil || !math.IsInf(v.F, 1) {
		t.Errorf("float 1/0 = %v, %v", v, err)
	}
}

func TestEvalIntrinsic(t *testing.T) {
	v, err := EvalIntrinsic("exp", Double, []Value{FloatVal(Double, 0)})
	if err != nil || v.F != 1 {
		t.Errorf("exp(0) = %v, %v", v, err)
	}
	v, err = EvalIntrinsic("min", Int, []Value{IntVal(Int, 3), IntVal(Int, -5)})
	if err != nil || v.I != -5 {
		t.Errorf("min(3,-5) = %v, %v", v, err)
	}
	v, err = EvalIntrinsic("abs", Int, []Value{IntVal(Int, -7)})
	if err != nil || v.I != 7 {
		t.Errorf("abs(-7) = %v, %v", v, err)
	}
	if _, err = EvalIntrinsic("exp", Double, nil); err == nil {
		t.Error("exp with no args accepted")
	}
	if _, err = EvalIntrinsic("nosuch", Double, nil); err == nil {
		t.Error("unknown intrinsic accepted")
	}
}
