package dse

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// memoize replicates the sequential engine's evaluator cache contract
// (repeat evaluations cost zero synthesis minutes) around a pure
// evaluator, so synthetic evaluators can be compared across engines:
// the sequential engine is handed memoize(pure), the parallel engine
// pure itself.
func memoize(pure tuner.Evaluator) tuner.Evaluator {
	cache := map[string]tuner.Result{}
	return func(pt space.Point) tuner.Result {
		key := pt.Key()
		if r, ok := cache[key]; ok {
			r.Point = pt
			r.Minutes = 0
			return r
		}
		r := pure(pt)
		cache[key] = r
		return r
	}
}

// assertOutcomesIdentical fails unless the two outcomes match on every
// field of the determinism contract: trajectory, best point, evaluation
// count, stop reason, clocks, and the prune/collapse counters.
func assertOutcomesIdentical(t *testing.T, seq, par *Outcome) {
	t.Helper()
	if !reflect.DeepEqual(seq.Trajectory, par.Trajectory) {
		t.Fatalf("trajectories differ:\nseq: %+v\npar: %+v", seq.Trajectory, par.Trajectory)
	}
	if seq.Evaluations != par.Evaluations {
		t.Fatalf("evaluations: seq %d par %d", seq.Evaluations, par.Evaluations)
	}
	if seq.StopReason != par.StopReason {
		t.Fatalf("stop reason: seq %s par %s", seq.StopReason, par.StopReason)
	}
	if seq.Best.Point.Key() != par.Best.Point.Key() || seq.Best.Objective != par.Best.Objective {
		t.Fatalf("best differs: seq %v=%v par %v=%v",
			seq.Best.Point, seq.Best.Objective, par.Best.Point, par.Best.Objective)
	}
	if seq.TotalMinutes != par.TotalMinutes {
		t.Fatalf("total minutes: seq %v par %v", seq.TotalMinutes, par.TotalMinutes)
	}
	if math.Float64bits(seq.FirstFeasible) != math.Float64bits(par.FirstFeasible) ||
		math.Float64bits(seq.FirstFeasibleMinutes) != math.Float64bits(par.FirstFeasibleMinutes) {
		t.Fatalf("first feasible: seq (%v, %v) par (%v, %v)",
			seq.FirstFeasible, seq.FirstFeasibleMinutes, par.FirstFeasible, par.FirstFeasibleMinutes)
	}
	if seq.StaticallyPruned != par.StaticallyPruned || seq.RangeCollapsed != par.RangeCollapsed {
		t.Fatalf("counters: seq prune=%d collapse=%d par prune=%d collapse=%d",
			seq.StaticallyPruned, seq.RangeCollapsed, par.StaticallyPruned, par.RangeCollapsed)
	}
	if seq.Summary() != par.Summary() {
		t.Fatalf("summaries differ:\nseq: %s\npar: %s", seq.Summary(), par.Summary())
	}
}

// TestParallelEngineMatchesSequential is the in-package determinism
// check over real kernels: the full S2FA configuration at several pool
// sizes must be byte-identical to the sequential reference. (The full
// 8-app × seed matrix lives in internal/apps; this one keeps the
// -race -count=N stress of internal/dse fast while still covering the
// engine end to end.)
func TestParallelEngineMatchesSequential(t *testing.T) {
	dev := fpga.VU9P()
	for _, name := range []string{"KMeans", "S-W"} {
		a := apps.Get(name)
		k, err := a.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 42} {
			spSeq := space.Identify(k)
			cfg := S2FAConfig(seed)
			cfg.Device = dev
			seq := Run(k, spSeq, NewEvaluator(k, spSeq, dev, int64(a.Tasks), hls.Options{}), cfg)
			for _, par := range []int{1, 4, 16} {
				if testing.Short() && par != 4 {
					continue
				}
				t.Run(fmt.Sprintf("%s/seed%d/par%d", name, seed, par), func(t *testing.T) {
					sp := space.Identify(k)
					pcfg := cfg
					pcfg.Engine = EngineParallel
					pcfg.Parallelism = par
					out := Run(k, sp, NewPureEvaluator(k, sp, dev, int64(a.Tasks), hls.Options{}), pcfg)
					assertOutcomesIdentical(t, seq, out)
				})
			}
		}
	}
}

// TestParallelEngineVanillaAndTrivial covers the two baseline
// configurations (no partitioning / trivial stopper) through the
// parallel engine.
func TestParallelEngineVanillaAndTrivial(t *testing.T) {
	dev := fpga.VU9P()
	a := apps.Get("KMeans")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		flat bool
	}{
		{"vanilla", VanillaConfig(7), true},
		{"trivial", TrivialStopConfig(7), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spSeq := space.Identify(k)
			seqEval := NewEvaluator(k, spSeq, dev, int64(a.Tasks), hls.Options{})
			if tc.flat {
				seqEval = FlatInfeasible(seqEval)
			}
			seq := Run(k, spSeq, seqEval, tc.cfg)

			sp := space.Identify(k)
			parEval := NewPureEvaluator(k, sp, dev, int64(a.Tasks), hls.Options{})
			if tc.flat {
				parEval = FlatInfeasible(parEval)
			}
			pcfg := tc.cfg
			pcfg.Engine = EngineParallel
			pcfg.Parallelism = 4
			assertOutcomesIdentical(t, seq, Run(k, sp, parEval, pcfg))
		})
	}
}

// syntheticPure is a deterministic pure evaluator over any space: the
// objective and synthesis cost are hashed from the point key, with a
// configurable feasibility predicate. It stands in for the HLS model in
// engine-behavior tests that need exact control of Minutes.
func syntheticPure(minutes float64, feasible func(space.Point) bool) tuner.Evaluator {
	return func(pt space.Point) tuner.Result {
		var h uint64 = 14695981039346656037
		for _, c := range []byte(pt.Key()) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		obj := 1 + float64(h%1000)/1000
		f := feasible == nil || feasible(pt)
		if !f {
			obj = infeasiblePenalty
		}
		return tuner.Result{Point: pt, Objective: obj, Feasible: f, Minutes: minutes}
	}
}

func kernelFor(t *testing.T) *cir.Kernel {
	t.Helper()
	a := apps.Get("KMeans")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestParallelTimeoutBoundaries drives both engines with evaluations of
// controlled virtual cost through the budget edge cases: an iteration
// that lands exactly on the limit, one that overshoots and pins, and a
// limit smaller than the first evaluation.
func TestParallelTimeoutBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		minutes float64
		limit   float64
	}{
		{"exactly-at-limit", 10, 40},          // 4 iterations land on the limit
		{"overshoot-pins", 7, 10},             // second iteration pins at the limit
		{"limit-below-first-eval", 30, 10},    // first evaluation already pins
		{"fractional-accumulation", 0.7, 2.0}, // rounding-sensitive accumulation
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := kernelFor(t)
			pure := syntheticPure(tc.minutes, nil)
			cfg := Config{
				Workers:          2,
				TimeLimitMinutes: tc.limit,
				Stopper:          NeverStopper{},
				BatchPerIter:     1,
				Seed:             5,
				MaxEvaluations:   10_000,
			}
			seq := Run(k, space.Identify(k), memoize(pure), cfg)
			pcfg := cfg
			pcfg.Engine = EngineParallel
			pcfg.Parallelism = 3
			par := Run(k, space.Identify(k), pure, pcfg)
			assertOutcomesIdentical(t, seq, par)
			if seq.TotalMinutes > tc.limit {
				t.Fatalf("clock overran the limit: %v > %v", seq.TotalMinutes, tc.limit)
			}
			if seq.StopReason != StopBudgetExhausted {
				t.Fatalf("stop reason %s, want budget-exhausted", seq.StopReason)
			}
		})
	}
}

// TestParallelMaxEvaluations checks the evaluation-budget cutoff stays
// identical when batches are pre-proposed.
func TestParallelMaxEvaluations(t *testing.T) {
	k := kernelFor(t)
	pure := syntheticPure(1, nil)
	cfg := Config{
		Workers:          4,
		TimeLimitMinutes: 240,
		Stopper:          NeverStopper{},
		BatchPerIter:     2,
		Seed:             9,
		MaxEvaluations:   37,
	}
	seq := Run(k, space.Identify(k), memoize(pure), cfg)
	pcfg := cfg
	pcfg.Engine = EngineParallel
	pcfg.Parallelism = 4
	par := Run(k, space.Identify(k), pure, pcfg)
	assertOutcomesIdentical(t, seq, par)
	if seq.StopReason != StopBudgetExhausted {
		t.Fatalf("stop reason %s", seq.StopReason)
	}
}

// TestParallelEmitsPoolCounters asserts the engine's observability
// contract: a traced parallel run reports dispatch, cache, queue-wait,
// and per-worker utilization counters.
func TestParallelEmitsPoolCounters(t *testing.T) {
	dev := fpga.VU9P()
	a := apps.Get("KMeans")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	sp := space.Identify(k)
	tr := obs.New(discardSink{})
	cfg := S2FAConfig(3)
	cfg.Device = dev
	cfg.Engine = EngineParallel
	cfg.Parallelism = 2
	cfg.Trace = tr
	out := Run(k, sp, NewPureEvaluator(k, sp, dev, int64(a.Tasks), hls.Options{}), cfg)
	if out.Evaluations == 0 {
		t.Fatal("no evaluations")
	}
	got := tr.Counters()
	for _, name := range []string{
		"dse.par.dispatched",
		"dse.par.cache.hits",
		"dse.par.cache.misses",
		"dse.par.speculative_waste",
		"dse.par.queue_wait_us",
		"dse.par.merge_stall_us",
		"dse.par.worker0.busy_us",
		"dse.par.worker1.busy_us",
		"hls.estimations",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("missing counter %s (have %v)", name, got)
		}
	}
	if got["dse.par.dispatched"] == 0 {
		t.Error("dispatched = 0, pool never saw a prefetch")
	}
	if got["dse.par.speculative_waste"] < 0 {
		t.Errorf("speculative waste negative: %d", got["dse.par.speculative_waste"])
	}
}

type discardSink struct{}

func (discardSink) Emit(obs.Event) {}
func (discardSink) Close() error   { return nil }

// TestEvalPoolCloseAbandonsQueue floods the pool and closes it
// immediately: close must return promptly (workers abandon the backlog)
// and never deadlock.
func TestEvalPoolCloseAbandonsQueue(t *testing.T) {
	sp := space.Identify(kernelFor(t))
	pure := syntheticPure(1, nil)
	p := newEvalPool(2, "test", pure)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p.prefetch(sp.RandomPoint(rng))
	}
	p.close(nil)
	if p.dispatched.Load() != 500 {
		t.Fatalf("dispatched = %d", p.dispatched.Load())
	}
}

// TestReplayEvaluatorFreshness pins the replay Minutes contract: first
// replay of a key charges the pure cost, repeats are free, regardless of
// whether the pool computed the value first.
func TestReplayEvaluatorFreshness(t *testing.T) {
	sp := space.Identify(kernelFor(t))
	pure := syntheticPure(42, nil)
	p := newEvalPool(2, "test", pure)
	defer p.close(nil)
	replay := p.replayEvaluator(nil)
	pt := sp.AreaSeed()

	p.prefetch(pt) // speculative compute may or may not win the race
	r1 := replay(pt)
	if r1.Minutes != 42 {
		t.Fatalf("first replay Minutes = %v, want fresh cost 42", r1.Minutes)
	}
	r2 := replay(pt)
	if r2.Minutes != 0 {
		t.Fatalf("repeat replay Minutes = %v, want 0", r2.Minutes)
	}
	if r1.Objective != r2.Objective {
		t.Fatalf("objective changed between replays: %v vs %v", r1.Objective, r2.Objective)
	}
}
