// Package dse implements S2FA's parallel learning-based design space
// exploration (paper §4): an OpenTuner-style ensemble search accelerated
// by static design-space partitioning ranked with a variance-impurity
// decision tree (§4.3.1), performance-/area-driven seed generation
// (§4.3.2), and a Shannon-entropy early-stopping criterion (§4.3.3), all
// executed by a first-come-first-serve partition scheduler over simulated
// CPU cores on a virtual clock.
package dse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"s2fa/internal/cir"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// Rule is one candidate partitioning predicate: it splits a parameter's
// ordinal domain at SplitOrd (left: ord < SplitOrd, right: ord >=
// SplitOrd). Rules come from the two methodologies of §4.3.1: loop
// hierarchy (factors at the same loop level behave similarly across
// applications) and RDD transformation semantics (the compiler-inserted
// outermost loop reflects the parallel pattern).
type Rule struct {
	Param    string
	SplitOrd int
	Why      string
}

func (r Rule) String() string { return fmt.Sprintf("%s < ord %d (%s)", r.Param, r.SplitOrd, r.Why) }

// Partition is a leaf of the decision tree: a sub-box of the design space
// described by conjoined constraints.
type Partition struct {
	Constraints []space.Constraint
	Sub         *space.Space
	Rules       []string
	// MeanLatency is the mean objective of offline training samples that
	// fell inside this partition; the FCFS queue is sorted by it.
	MeanLatency float64
}

func (p Partition) String() string {
	if len(p.Rules) == 0 {
		return "full space"
	}
	return strings.Join(p.Rules, " & ")
}

// CandidateRules derives the rule pool for a kernel from its loop
// hierarchy and RDD pattern.
func CandidateRules(s *space.Space, k *cir.Kernel) []Rule {
	info := cir.Analyze(k)
	var rules []Rule
	for i := range s.Params {
		p := &s.Params[i]
		size := p.Size()
		levelWhy := fmt.Sprintf("loop-level-%d", p.Depth)
		if p.LoopID == k.TaskLoopID {
			levelWhy = "rdd-" + k.Pattern.String() + "-outer"
		}
		switch p.Kind {
		case space.FactorParallel:
			for _, v := range []int{4, 16, 64} {
				if ord := p.Ordinal(p.Clamp(v)); ord > 0 && ord < size {
					rules = append(rules, Rule{Param: p.Name, SplitOrd: ord, Why: levelWhy})
				}
			}
		case space.FactorTile:
			if size > 3 {
				rules = append(rules, Rule{Param: p.Name, SplitOrd: size / 2, Why: levelWhy})
			}
		case space.FactorPipeline:
			// off | {on, flatten} and {off, on} | flatten.
			rules = append(rules, Rule{Param: p.Name, SplitOrd: 1, Why: levelWhy + "-pipe"})
			if size > 2 {
				rules = append(rules, Rule{Param: p.Name, SplitOrd: 2, Why: levelWhy + "-flatten"})
			}
		case space.FactorBitWidth:
			if size > 2 {
				rules = append(rules, Rule{Param: p.Name, SplitOrd: size / 2, Why: "interface-width"})
			}
		}
		_ = info
	}
	return rules
}

// treeSample is one offline training observation for the decision tree.
type treeSample struct {
	pt  space.Point
	obj float64
}

type treeNode struct {
	rule        *Rule
	left, right *treeNode
}

// PartitionConfig tunes the partitioner.
type PartitionConfig struct {
	// TrainingSamples is the number of offline evaluations used to rank
	// rules. These model the pre-established per-loop-hierarchy rules of
	// §4.3.1 and are not charged to the DSE clock.
	TrainingSamples int
	// MaxDepth bounds the decision tree (leaves <= 2^MaxDepth).
	MaxDepth int
	// MinLeaf stops splitting below this sample count.
	MinLeaf int
}

// DefaultPartitionConfig mirrors the paper's setup: enough partitions to
// keep eight cores busy.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{TrainingSamples: 96, MaxDepth: 2, MinLeaf: 8}
}

// BuildPartitions trains a variance-impurity decision tree over offline
// samples and returns its leaves as disjoint design-space partitions
// ordered by promise (ascending mean latency of training samples in the
// leaf), which is the order the FCFS scheduler serves them in.
func BuildPartitions(s *space.Space, k *cir.Kernel, eval tuner.Evaluator, cfg PartitionConfig, seed int64) []Partition {
	return buildPartitions(s, k, eval, cfg, seed, nil)
}

// buildPartitions is BuildPartitions with an optional prefetch hook: the
// full training-point list is generated up front (point generation never
// depends on evaluation results, so the random stream is unchanged) and
// announced to prefetch before the in-order evaluations begin. The
// parallel engine uses the hook to warm its evaluation pool so the ~100
// training estimations overlap instead of running back to back.
func buildPartitions(s *space.Space, k *cir.Kernel, eval tuner.Evaluator, cfg PartitionConfig, seed int64, prefetch func(space.Point)) []Partition {
	rng := rand.New(rand.NewSource(seed))
	rules := CandidateRules(s, k)
	if len(rules) == 0 {
		return []Partition{{Sub: s}}
	}

	// Training set: uniform samples plus samples anchored around the
	// conservative seed (the offline "training data to establish the
	// rules" of §4.3.1 comes from applications with similar loop
	// hierarchies, whose good configurations cluster near the feasible
	// region).
	pts := make([]space.Point, 0, cfg.TrainingSamples+2)
	pts = append(pts, s.AreaSeed(), s.PerformanceSeed())
	area := s.AreaSeed()
	for i := 0; i < cfg.TrainingSamples; i++ {
		if i%2 == 0 {
			pts = append(pts, s.RandomPoint(rng))
			continue
		}
		// Local walk around the conservative seed: mutate a few factors.
		pt := area.Clone()
		for m := 0; m < 2+rng.Intn(3); m++ {
			pp := &s.Params[rng.Intn(len(s.Params))]
			pt[pp.Name] = pp.Random(rng)
		}
		pts = append(pts, pt)
	}
	if prefetch != nil {
		for _, pt := range pts {
			prefetch(pt)
		}
	}
	samples := make([]treeSample, 0, len(pts))
	for _, pt := range pts {
		r := eval(pt)
		samples = append(samples, treeSample{pt: pt, obj: r.Objective})
	}
	// Clamp unbounded penalties so variance stays informative.
	var worstFinite float64 = 1
	for _, smp := range samples {
		if !math.IsInf(smp.obj, 1) && smp.obj > worstFinite {
			worstFinite = smp.obj
		}
	}
	for i := range samples {
		if math.IsInf(samples[i].obj, 1) {
			samples[i].obj = worstFinite * 4
		}
	}

	// Mandatory first-level split on the RDD-semantics rule: the
	// scheduling (pipeline mode) of the compiler-inserted outermost loop
	// (paper §4.3.1: "we define the rule based on the scheduling of the
	// outermost loop in kernels"). The decision tree then refines each
	// branch with the loop-hierarchy rules.
	taskPipe := k.TaskLoopID + ".pipeline"
	var parts []Partition
	tp := s.Param(taskPipe)
	for ord := 0; ord < tp.Size(); ord++ {
		c := space.Constraint{Param: taskPipe, LoOrd: ord, HiOrd: ord}
		sub, err := space.Restrict(s, []space.Constraint{c})
		if err != nil {
			continue
		}
		var branchSamples []treeSample
		for _, smp := range samples {
			if tp.Ordinal(smp.pt[taskPipe]) == ord {
				branchSamples = append(branchSamples, smp)
			}
		}
		branchRules := make([]Rule, 0, len(rules))
		for _, r := range rules {
			if r.Param != taskPipe {
				branchRules = append(branchRules, r)
			}
		}
		why := fmt.Sprintf("%s==%d", taskPipe, tp.ValueAt(ord))
		// Within sub the task-pipeline domain is already the single
		// value; the path constraint is rebased to ordinal 0.
		rebased := space.Constraint{Param: taskPipe, LoOrd: 0, HiOrd: 0}
		root := buildTree(branchSamples, branchRules, sub, cfg, 1)
		collectLeaves(root, sub, []space.Constraint{rebased}, []string{why}, branchSamples, &parts)
	}
	if len(parts) == 0 {
		return []Partition{{Sub: s}}
	}
	// Serve the most promising region first: FCFS order by mean training
	// latency inside each leaf.
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].MeanLatency < parts[j].MeanLatency })
	return parts
}

// buildTree grows the tree greedily by information gain with variance
// impurity (paper Eq. 1; variance is the impurity for regressed latency).
func buildTree(samples []treeSample, rules []Rule, s *space.Space, cfg PartitionConfig, depth int) *treeNode {
	if depth >= cfg.MaxDepth || len(samples) < 2*cfg.MinLeaf {
		return &treeNode{}
	}
	baseImp := variance(samples)
	var best *Rule
	var bestGain float64
	var bestL, bestR []treeSample
	for i := range rules {
		r := &rules[i]
		l, rr := split(samples, r, s)
		if len(l) < cfg.MinLeaf || len(rr) < cfg.MinLeaf {
			continue
		}
		n := float64(len(samples))
		gain := baseImp - float64(len(l))/n*variance(l) - float64(len(rr))/n*variance(rr)
		if gain > bestGain {
			best, bestGain, bestL, bestR = r, gain, l, rr
		}
	}
	if best == nil || bestGain <= 1e-15 {
		return &treeNode{}
	}
	// A rule is consumed once per path (re-splitting the same ordinal
	// threshold is a no-op anyway).
	rest := make([]Rule, 0, len(rules)-1)
	for i := range rules {
		if rules[i] != *best {
			rest = append(rest, rules[i])
		}
	}
	return &treeNode{
		rule:  best,
		left:  buildTree(bestL, rest, s, cfg, depth+1),
		right: buildTree(bestR, rest, s, cfg, depth+1),
	}
}

func split(samples []treeSample, r *Rule, s *space.Space) (l, rr []treeSample) {
	p := s.Param(r.Param)
	for _, smp := range samples {
		if p.Ordinal(smp.pt[r.Param]) < r.SplitOrd {
			l = append(l, smp)
		} else {
			rr = append(rr, smp)
		}
	}
	return l, rr
}

func variance(samples []treeSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var mean float64
	for _, s := range samples {
		mean += s.obj
	}
	mean /= float64(len(samples))
	var v float64
	for _, s := range samples {
		d := s.obj - mean
		v += d * d
	}
	return v / float64(len(samples))
}

func collectLeaves(n *treeNode, s *space.Space, cons []space.Constraint, why []string, samples []treeSample, out *[]Partition) {
	if n.rule == nil {
		sub, err := space.Restrict(s, cons)
		if err != nil {
			return // empty sub-box; cannot happen with well-formed rules
		}
		mean := math.Inf(1)
		if len(samples) > 0 {
			mean = 0
			for _, smp := range samples {
				mean += smp.obj
			}
			mean /= float64(len(samples))
		}
		p := Partition{
			Constraints: append([]space.Constraint(nil), cons...),
			Sub:         sub,
			Rules:       append([]string(nil), why...),
			MeanLatency: mean,
		}
		*out = append(*out, p)
		return
	}
	p := s.Param(n.rule.Param)
	lc := space.Constraint{Param: n.rule.Param, LoOrd: 0, HiOrd: n.rule.SplitOrd - 1}
	rc := space.Constraint{Param: n.rule.Param, LoOrd: n.rule.SplitOrd, HiOrd: p.Size() - 1}
	lw := fmt.Sprintf("%s<%d", n.rule.Param, p.ValueAt(n.rule.SplitOrd))
	rw := fmt.Sprintf("%s>=%d", n.rule.Param, p.ValueAt(n.rule.SplitOrd))
	lSamples, rSamples := split(samples, n.rule, s)
	// Copy the path slices: both children extend them independently.
	lCons := append(append([]space.Constraint(nil), cons...), lc)
	rCons := append(append([]space.Constraint(nil), cons...), rc)
	lWhy := append(append([]string(nil), why...), lw)
	rWhy := append(append([]string(nil), why...), rw)
	collectLeaves(n.left, s, lCons, lWhy, lSamples, out)
	collectLeaves(n.right, s, rCons, rWhy, rSamples, out)
}
