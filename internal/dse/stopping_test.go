package dse

import (
	"fmt"
	"testing"

	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// wide returns a design point with n factors, mutating factor (i mod n)
// each call so the stopper sees realistic single-factor moves.
func widePoint(n, i int) space.Point {
	pt := make(space.Point, n)
	for j := 0; j < n; j++ {
		pt[fmt.Sprintf("p%d", j)] = 1
	}
	pt[fmt.Sprintf("p%d", i%n)] = 2 + i
	return pt
}

// TestEntropyStopperMinIterationsScalesWithFactors: the exploration floor
// is max(MinIterations, 2*|factors|) capped at 64, so a 40-factor kernel
// must survive at least 64 stagnant iterations.
func TestEntropyStopperMinIterationsScalesWithFactors(t *testing.T) {
	st := NewEntropyStopper().Clone().(*EntropyStopper)
	const factors = 40
	stoppedAt := -1
	for i := 0; i < 200; i++ {
		if st.Observe(tuner.Result{Point: widePoint(factors, i), Objective: 100, Feasible: true}, false) {
			stoppedAt = i + 1
			break
		}
	}
	if stoppedAt < 0 {
		t.Fatal("never stopped on a stagnant 40-factor partition")
	}
	if stoppedAt < 64 {
		t.Errorf("stopped at iteration %d, before the 2*%d-capped-at-64 floor", stoppedAt, factors)
	}
	if st.MinIterations != 64 {
		t.Errorf("MinIterations = %d, want the 64 cap", st.MinIterations)
	}
}

// TestEntropyStopperRespectsImprovementGrace: a fresh best resets the
// since-improvement counter, so the criterion cannot fire within 10
// iterations of visible progress even with a flat entropy signal.
func TestEntropyStopperRespectsImprovementGrace(t *testing.T) {
	st := NewEntropyStopper().Clone().(*EntropyStopper)
	const factors = 3
	// Long stagnation to satisfy floor and streak...
	i := 0
	for ; i < 70; i++ {
		if st.Observe(tuner.Result{Point: widePoint(factors, i), Objective: 100, Feasible: true}, false) {
			break
		}
	}
	// ...then a big improvement: the next 9 observations must not stop.
	st.Observe(tuner.Result{Point: widePoint(factors, i), Objective: 10, Feasible: true}, true)
	for j := 0; j < 9; j++ {
		if st.Observe(tuner.Result{Point: widePoint(factors, i+1+j), Objective: 100, Feasible: true}, false) {
			t.Fatalf("stopped %d iterations after an order-of-magnitude improvement", j+1)
		}
	}
}

// TestEntropyStopperCloneIsFresh: Clone must copy only the configuration,
// never accumulated state.
func TestEntropyStopperCloneIsFresh(t *testing.T) {
	st := NewEntropyStopper()
	st.Theta = 0.1
	st.Consecutive = 7
	for i := 0; i < 30; i++ {
		st.Observe(tuner.Result{Point: widePoint(3, i), Objective: 100, Feasible: true}, false)
	}
	c := st.Clone().(*EntropyStopper)
	if c.Theta != 0.1 || c.Consecutive != 7 {
		t.Errorf("Clone lost configuration: %+v", c)
	}
	if c.iters != 0 || c.attempts != nil || c.streak != 0 {
		t.Errorf("Clone carried state over: %+v", c)
	}
}

// TestTrivialStopperStopsExactlyAtFloor: with stagnation from the first
// iteration, the trivial criterion fires exactly when both the patience
// and the exploration floor are met.
func TestTrivialStopperStopsExactlyAtFloor(t *testing.T) {
	st := NewTrivialStopper().Clone().(*TrivialStopper)
	const factors = 8 // floor = 2*8 = 16 > default 12
	stoppedAt := -1
	for i := 0; i < 100; i++ {
		if st.Observe(tuner.Result{Point: widePoint(factors, i), Objective: 100, Feasible: true}, false) {
			stoppedAt = i + 1
			break
		}
	}
	if stoppedAt != 16 {
		t.Errorf("stopped at iteration %d, want exactly the 2*%d floor = 16", stoppedAt, factors)
	}
}

// TestTrivialStopperLongTail reproduces the weakness §5.2 attributes to
// the baseline: marginal sub-percent improvements reset the patience
// counter every time, keeping the search alive indefinitely — the exact
// behaviour the entropy criterion's 1% threshold filters out.
func TestTrivialStopperLongTail(t *testing.T) {
	st := NewTrivialStopper().Clone().(*TrivialStopper)
	obj := 100.0
	for i := 0; i < 300; i++ {
		if i%(st.Patience-1) == 0 {
			obj *= 0.9999 // a trickle improvement just inside patience
		}
		newBest := i%(st.Patience-1) == 0
		if st.Observe(tuner.Result{Point: widePoint(4, i), Objective: obj, Feasible: true}, newBest) {
			t.Fatalf("trivial criterion fired at %d despite trickle improvements", i)
		}
	}
}

// TestTrivialStopperCloneIsFresh mirrors the entropy clone test.
func TestTrivialStopperCloneIsFresh(t *testing.T) {
	st := &TrivialStopper{Patience: 5, MinIterations: 3}
	// Single-factor points keep the dynamic 2*|factors| floor below the
	// configured one, so the configuration survives Observe unchanged.
	for i := 0; i < 4; i++ {
		st.Observe(tuner.Result{Point: widePoint(1, i), Objective: 100, Feasible: true}, false)
	}
	c := st.Clone().(*TrivialStopper)
	if c.Patience != 5 || c.MinIterations != 3 {
		t.Errorf("Clone lost configuration: %+v", c)
	}
	if c.iters != 0 || c.misses != 0 {
		t.Errorf("Clone carried state over: %+v", c)
	}
}

// TestInfeasibleResultsNeverImprove: infeasible points must not register
// as progress for either criterion.
func TestInfeasibleResultsNeverImprove(t *testing.T) {
	es := NewEntropyStopper().Clone().(*EntropyStopper)
	ts := NewTrivialStopper().Clone().(*TrivialStopper)
	esStopped, tsStopped := false, false
	for i := 0; i < 200 && !(esStopped && tsStopped); i++ {
		// Objectives "improve" every step but nothing is feasible.
		r := tuner.Result{Point: widePoint(3, i), Objective: float64(200 - i), Feasible: false}
		esStopped = esStopped || es.Observe(r, false)
		tsStopped = tsStopped || ts.Observe(r, false)
	}
	if !esStopped {
		t.Error("entropy criterion never fired on an all-infeasible partition")
	}
	if !tsStopped {
		t.Error("trivial criterion never fired on an all-infeasible partition")
	}
}
