package dse

import (
	"reflect"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/space"
)

// TestRangeCollapsePreservesTrajectorySW is the acceptance check for the
// value-range optimization: on S-W at seed 42 the collapse must cut real
// HLS estimations below the 93-estimation reference while leaving the
// search — every trajectory point, the evaluation count, and the best
// design — byte-identical to a run without it.
func TestRangeCollapsePreservesTrajectorySW(t *testing.T) {
	a := apps.Get("S-W")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	run := func(restrict bool) *Outcome {
		sp := space.Identify(k)
		eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
		cfg := S2FAConfig(42)
		cfg.RestrictRanges = restrict
		// Isolate the range optimization: dependence collapsing is
		// exercised by its own controlled pair in dependprune_test.go.
		cfg.DependPrune = false
		return Run(k, sp, eval, cfg)
	}
	base := run(false)
	opt := run(true)

	if !reflect.DeepEqual(base.Best.Point, opt.Best.Point) {
		t.Errorf("best point changed:\n  base %v\n  opt  %v", base.Best.Point, opt.Best.Point)
	}
	if base.Best.Objective != opt.Best.Objective {
		t.Errorf("best objective changed: %v -> %v", base.Best.Objective, opt.Best.Objective)
	}
	if !reflect.DeepEqual(base.Trajectory, opt.Trajectory) {
		t.Errorf("trajectory changed:\n  base %v\n  opt  %v", base.Trajectory, opt.Trajectory)
	}
	if base.Evaluations != opt.Evaluations {
		t.Errorf("evaluation count changed: %d -> %d", base.Evaluations, opt.Evaluations)
	}
	if base.StaticallyPruned != opt.StaticallyPruned {
		t.Errorf("static prune count changed: %d -> %d", base.StaticallyPruned, opt.StaticallyPruned)
	}

	if opt.RangeRestrictedValues != 4 {
		t.Errorf("RangeRestrictedValues = %d, want 4 (one 512-bit value per buffer)", opt.RangeRestrictedValues)
	}
	if opt.RangeCollapsed == 0 {
		t.Error("RangeCollapsed = 0: no evaluation reused a width-equivalent report")
	}
	baseHLS := base.Evaluations - base.StaticallyPruned
	optHLS := opt.Evaluations - opt.StaticallyPruned - opt.RangeCollapsed
	if baseHLS != 93 {
		t.Errorf("baseline HLS estimations = %d, want 93 (seed-42 reference)", baseHLS)
	}
	if optHLS >= 93 {
		t.Errorf("HLS estimations = %d, want < 93", optHLS)
	}
	t.Logf("S-W seed 42: HLS estimations %d -> %d (collapsed %d, dominated widths %d)",
		baseHLS, optHLS, opt.RangeCollapsed, opt.RangeRestrictedValues)
}
