package dse

import (
	"math"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/space"
)

// TestCandidateRulesWellFormed checks every generated rule is a valid
// split: the parameter exists and the threshold ordinal leaves both sides
// non-empty.
func TestCandidateRulesWellFormed(t *testing.T) {
	for _, name := range []string{"KMeans", "S-W", "AES"} {
		a := apps.Get(name)
		k, err := a.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		sp := space.Identify(k)
		rules := CandidateRules(sp, k)
		if len(rules) == 0 {
			t.Fatalf("%s: no candidate rules", name)
		}
		for _, r := range rules {
			p := sp.Param(r.Param)
			if p == nil {
				t.Errorf("%s: rule on unknown parameter %q", name, r.Param)
				continue
			}
			if r.SplitOrd <= 0 || r.SplitOrd >= p.Size() {
				t.Errorf("%s: rule %s splits outside (0,%d)", name, r, p.Size())
			}
			if r.Why == "" {
				t.Errorf("%s: rule %s has no methodology tag", name, r)
			}
		}
	}
}

// TestCandidateRulesPipelineSplits asserts the two pipeline splits of
// §4.3.1 exist for every loop: off|{on,flatten} and {off,on}|flatten.
func TestCandidateRulesPipelineSplits(t *testing.T) {
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	sp := space.Identify(k)
	rules := CandidateRules(sp, k)
	splits := map[string]map[int]bool{}
	for _, r := range rules {
		p := sp.Param(r.Param)
		if p.Kind != space.FactorPipeline {
			continue
		}
		if splits[r.Param] == nil {
			splits[r.Param] = map[int]bool{}
		}
		splits[r.Param][r.SplitOrd] = true
	}
	for i := range sp.Params {
		p := &sp.Params[i]
		if p.Kind != space.FactorPipeline {
			continue
		}
		if !splits[p.Name][1] || !splits[p.Name][2] {
			t.Errorf("loop %s missing a pipeline split: have %v", p.LoopID, splits[p.Name])
		}
	}
}

// TestPartitionCardinalitiesSumToSpace is the counting form of the
// disjoint-and-covering property: since partitions are axis-aligned
// sub-boxes, their cardinalities must sum to the full space's.
func TestPartitionCardinalitiesSumToSpace(t *testing.T) {
	for _, name := range []string{"KMeans", "S-W"} {
		a := apps.Get(name)
		k, _ := a.Kernel()
		sp := space.Identify(k)
		eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
		parts := BuildPartitions(sp, k, eval, DefaultPartitionConfig(), 7)
		var sum float64
		for _, p := range parts {
			sum += p.Sub.Cardinality()
		}
		total := sp.Cardinality()
		if math.Abs(sum-total) > 1e-9*total {
			t.Errorf("%s: partition cardinalities sum to %.6g, space has %.6g", name, sum, total)
		}
	}
}

// TestPartitionSubDomainsAreSubsets checks every partition parameter's
// domain is contained in the parent space's domain.
func TestPartitionSubDomainsAreSubsets(t *testing.T) {
	a := apps.Get("S-W")
	k, _ := a.Kernel()
	sp := space.Identify(k)
	eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
	parts := BuildPartitions(sp, k, eval, DefaultPartitionConfig(), 7)
	for _, part := range parts {
		if len(part.Sub.Params) != len(sp.Params) {
			t.Fatalf("partition %q dropped parameters: %d vs %d",
				part, len(part.Sub.Params), len(sp.Params))
		}
		for i := range part.Sub.Params {
			p := &part.Sub.Params[i]
			parent := sp.Param(p.Name)
			if parent == nil {
				t.Fatalf("partition %q invented parameter %q", part, p.Name)
			}
			for ord := 0; ord < p.Size(); ord++ {
				if !parent.Contains(p.ValueAt(ord)) {
					t.Errorf("partition %q: %s value %d outside parent domain",
						part, p.Name, p.ValueAt(ord))
				}
			}
		}
	}
}

// TestPartitionsServedMostPromisingFirst asserts the FCFS queue order:
// ascending mean training latency (§4.3.1).
func TestPartitionsServedMostPromisingFirst(t *testing.T) {
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	sp := space.Identify(k)
	eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
	parts := BuildPartitions(sp, k, eval, DefaultPartitionConfig(), 7)
	for i := 1; i < len(parts); i++ {
		if parts[i].MeanLatency < parts[i-1].MeanLatency {
			t.Errorf("partition %d (mean %.4g) served after %d (mean %.4g)",
				i, parts[i].MeanLatency, i-1, parts[i-1].MeanLatency)
		}
	}
}

// TestBuildPartitionsDeterministic: same seed, same tree.
func TestBuildPartitionsDeterministic(t *testing.T) {
	a := apps.Get("S-W")
	k, _ := a.Kernel()
	sp := space.Identify(k)
	build := func() []string {
		eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
		parts := BuildPartitions(sp, k, eval, DefaultPartitionConfig(), 11)
		out := make([]string, len(parts))
		for i, p := range parts {
			out[i] = p.String()
		}
		return out
	}
	p1, p2 := build(), build()
	if len(p1) != len(p2) {
		t.Fatalf("partition counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("partition %d differs: %q vs %q", i, p1[i], p2[i])
		}
	}
}

func TestPartitionStringForms(t *testing.T) {
	if got := (Partition{}).String(); got != "full space" {
		t.Errorf("unconstrained partition String() = %q", got)
	}
	r := Rule{Param: "L1.parallel", SplitOrd: 3, Why: "loop-level-1"}
	if got := r.String(); got != "L1.parallel < ord 3 (loop-level-1)" {
		t.Errorf("Rule.String() = %q", got)
	}
}
