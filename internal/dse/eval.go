package dse

import (
	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/merlin"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// NewEvaluator builds the design-point evaluator used throughout the DSE:
// design point -> Merlin annotation -> HLS estimation. The objective is
// estimated kernel execution seconds for a batch of n tasks (cycles over
// achieved frequency). Results are memoized: re-evaluating a synthesized
// configuration costs no additional synthesis time.
func NewEvaluator(k *cir.Kernel, sp *space.Space, dev *fpga.Device, n int64, opt hls.Options) tuner.Evaluator {
	return NewTracedEvaluator(k, sp, dev, n, opt, nil)
}

// NewPureEvaluator is the uncached design-point evaluator: every call
// runs the full Merlin + estimator pipeline and charges fresh synthesis
// minutes. It is a pure function of the point (given fixed
// kernel/space/device/options) and touches no shared mutable state, so
// the concurrent engine's worker pool calls it from many goroutines at
// once; memoization is layered on top by the engines (NewTracedEvaluator
// for the sequential path, the replay evaluator for the parallel one).
func NewPureEvaluator(k *cir.Kernel, sp *space.Space, dev *fpga.Device, n int64, opt hls.Options) tuner.Evaluator {
	return func(pt space.Point) tuner.Result {
		r, _ := pureEval(k, sp, dev, n, opt, pt)
		return r
	}
}

// pureEval evaluates one point with no cache and no tracing. The bool
// reports whether Merlin rejected the point before estimation, which the
// traced wrappers surface in their span args. Rejected results carry a
// nil Meta; estimated ones always carry their hls.Report.
func pureEval(k *cir.Kernel, sp *space.Space, dev *fpga.Device, n int64, opt hls.Options, pt space.Point) (tuner.Result, bool) {
	d := sp.Directives(pt)
	ann, err := merlin.Annotate(k, d)
	if err != nil {
		return tuner.Result{
			Point:     pt,
			Objective: rejectPenalty,
			Feasible:  false,
			Minutes:   1, // rejected before synthesis
		}, true
	}
	rep := hls.Estimate(ann, dev, n, opt)
	obj := rep.Seconds()
	if !rep.Feasible {
		// Graded penalty: infeasible points are never accepted
		// as incumbents, but the learning techniques still see a
		// gradient toward the feasible region (less overflow =
		// smaller penalty), which is how real HLS autotuners
		// escape all-infeasible starting populations.
		obj = infeasiblePenalty * (1 + rep.MaxUtil())
	}
	return tuner.Result{
		Point:     pt,
		Objective: obj,
		Feasible:  rep.Feasible,
		Minutes:   rep.SynthMinutes,
		Meta:      rep,
	}, false
}

// NewTracedEvaluator is NewEvaluator with an "hls"/"estimate" span around
// every invocation: cache hits close immediately with cache=hit, fresh
// estimations carry the Merlin + estimator work and close with the
// synthesis minutes and feasibility verdict. With tr == nil it behaves —
// and costs — exactly like NewEvaluator. The memo table is the sharded
// hls.Cache, so the evaluator is safe for concurrent callers; with a
// single caller its hit/miss sequence is identical to the old plain-map
// implementation.
func NewTracedEvaluator(k *cir.Kernel, sp *space.Space, dev *fpga.Device, n int64, opt hls.Options, tr *obs.Trace) tuner.Evaluator {
	cache := hls.NewCache[tuner.Result](hls.DefaultCacheShards)
	return func(pt space.Point) tuner.Result {
		key := pt.Key()
		r, cached := cache.GetOrCompute(key, func() tuner.Result {
			var span *obs.Span
			if tr != nil {
				span = tr.Begin("hls", "estimate",
					obs.Str("point", key), obs.Str("cache", "fresh"))
				tr.Count("hls.estimations", 1)
			}
			res, rejected := pureEval(k, sp, dev, n, opt, pt)
			span.End(estimateEndKVs(res, rejected)...)
			tr.Observe("hls_synth_minutes", res.Minutes)
			return res
		})
		if cached {
			r.Point = pt
			r.Minutes = 0 // cached HLS report, no synthesis re-run
			if tr != nil {
				hit := tr.Begin("hls", "estimate",
					obs.Str("point", key), obs.Str("cache", "hit"))
				hit.End(obs.F64("synth_min", 0), obs.Bool("feasible", r.Feasible))
				tr.Count("hls.cache_hits", 1)
			}
		}
		return r
	}
}

// estimateEndKVs builds the closing args of a fresh hls/estimate span:
// synthesis minutes and feasibility always, the Merlin rejection marker
// when the point never reached estimation, and the estimator's
// structured bottleneck verdict (tag + offending access site) when the
// report carries one — the fields `s2fa-report` ranks slow estimations
// by.
func estimateEndKVs(res tuner.Result, rejected bool) []obs.KV {
	kvs := make([]obs.KV, 0, 5)
	if rejected {
		kvs = append(kvs, obs.Str("merlin", "rejected"))
	}
	kvs = append(kvs,
		obs.F64("synth_min", res.Minutes),
		obs.Bool("feasible", res.Feasible))
	if rep, ok := res.Meta.(hls.Report); ok {
		if rep.Bottleneck != "" {
			kvs = append(kvs, obs.Str("bottleneck", rep.Bottleneck))
		}
		if rep.BottleneckSite != "" {
			kvs = append(kvs, obs.Str("bottleneck_site", rep.BottleneckSite))
		}
	}
	return kvs
}

// Penalty objectives (seconds-scale but far above any real design).
const (
	infeasiblePenalty = 1e4
	rejectPenalty     = 1e8
)

// FlatInfeasible wraps an evaluator so that every infeasible point
// returns the same flat penalty, erasing the feasibility gradient. This
// models stock OpenTuner, which learns nothing from failed syntheses —
// the behavior that leaves the vanilla flow "trapped in the infeasible
// design space region" (paper §4.3.2) and that S2FA's seed generation
// exists to avoid.
func FlatInfeasible(eval tuner.Evaluator) tuner.Evaluator {
	return func(pt space.Point) tuner.Result {
		r := eval(pt)
		if !r.Feasible {
			r.Objective = rejectPenalty
		}
		return r
	}
}

// Report extracts the HLS report attached to a result, if any.
func Report(r tuner.Result) (hls.Report, bool) {
	rep, ok := r.Meta.(hls.Report)
	return rep, ok
}
