package dse

import (
	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/merlin"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// NewEvaluator builds the design-point evaluator used throughout the DSE:
// design point -> Merlin annotation -> HLS estimation. The objective is
// estimated kernel execution seconds for a batch of n tasks (cycles over
// achieved frequency). Results are memoized: re-evaluating a synthesized
// configuration costs no additional synthesis time.
func NewEvaluator(k *cir.Kernel, sp *space.Space, dev *fpga.Device, n int64, opt hls.Options) tuner.Evaluator {
	return NewTracedEvaluator(k, sp, dev, n, opt, nil)
}

// NewTracedEvaluator is NewEvaluator with an "hls"/"estimate" span around
// every invocation: cache hits close immediately with cache=hit, fresh
// estimations carry the Merlin + estimator work and close with the
// synthesis minutes and feasibility verdict. With tr == nil it behaves —
// and costs — exactly like NewEvaluator.
func NewTracedEvaluator(k *cir.Kernel, sp *space.Space, dev *fpga.Device, n int64, opt hls.Options, tr *obs.Trace) tuner.Evaluator {
	cache := map[string]tuner.Result{}
	return func(pt space.Point) tuner.Result {
		key := pt.Key()
		if r, ok := cache[key]; ok {
			r.Point = pt
			r.Minutes = 0 // cached HLS report, no synthesis re-run
			if tr != nil {
				hit := tr.Begin("hls", "estimate",
					obs.Str("point", key), obs.Str("cache", "hit"))
				hit.End(obs.F64("synth_min", 0), obs.Bool("feasible", r.Feasible))
				tr.Count("hls.cache_hits", 1)
			}
			return r
		}
		var span *obs.Span
		if tr != nil {
			span = tr.Begin("hls", "estimate",
				obs.Str("point", key), obs.Str("cache", "fresh"))
			tr.Count("hls.estimations", 1)
		}
		d := sp.Directives(pt)
		ann, err := merlin.Annotate(k, d)
		var res tuner.Result
		if err != nil {
			res = tuner.Result{
				Point:     pt,
				Objective: rejectPenalty,
				Feasible:  false,
				Minutes:   1, // rejected before synthesis
			}
			span.End(obs.Str("merlin", "rejected"),
				obs.F64("synth_min", res.Minutes), obs.Bool("feasible", false))
		} else {
			rep := hls.Estimate(ann, dev, n, opt)
			obj := rep.Seconds()
			if !rep.Feasible {
				// Graded penalty: infeasible points are never accepted
				// as incumbents, but the learning techniques still see a
				// gradient toward the feasible region (less overflow =
				// smaller penalty), which is how real HLS autotuners
				// escape all-infeasible starting populations.
				obj = infeasiblePenalty * (1 + rep.MaxUtil())
			}
			res = tuner.Result{
				Point:     pt,
				Objective: obj,
				Feasible:  rep.Feasible,
				Minutes:   rep.SynthMinutes,
				Meta:      rep,
			}
			span.End(obs.F64("synth_min", rep.SynthMinutes),
				obs.Bool("feasible", rep.Feasible))
		}
		cache[key] = res
		return res
	}
}

// Penalty objectives (seconds-scale but far above any real design).
const (
	infeasiblePenalty = 1e4
	rejectPenalty     = 1e8
)

// FlatInfeasible wraps an evaluator so that every infeasible point
// returns the same flat penalty, erasing the feasibility gradient. This
// models stock OpenTuner, which learns nothing from failed syntheses —
// the behavior that leaves the vanilla flow "trapped in the infeasible
// design space region" (paper §4.3.2) and that S2FA's seed generation
// exists to avoid.
func FlatInfeasible(eval tuner.Evaluator) tuner.Evaluator {
	return func(pt space.Point) tuner.Result {
		r := eval(pt)
		if !r.Feasible {
			r.Objective = rejectPenalty
		}
		return r
	}
}

// Report extracts the HLS report attached to a result, if any.
func Report(r tuner.Result) (hls.Report, bool) {
	rep, ok := r.Meta.(hls.Report)
	return rep, ok
}
