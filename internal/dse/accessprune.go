package dse

import (
	"sync"

	"s2fa/internal/access"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// accessPruneEvaluator wraps an evaluator with access-pattern collapsing
// (internal/access): a loop issuing a direct per-iteration accesses to a
// banked on-chip array can keep at most floor(128/a) parallel lanes fed
// (64 banks x 2 ports — hls model.laneCap), and the binder never
// instantiates datapaths the BRAM ports cannot feed. Parallel factors
// above the cap therefore produce the cap-sibling's schedule and area
// exactly, so such points map onto a canonical clamped key: the first
// evaluation synthesizes, every later equivalent point is served its
// bit-identical report without touching Merlin + the estimator. The cap
// is a static property of the raw loop structure (Merlin annotation
// never restructures before estimation), so the mapping is valid for
// every pipeline mode. Because the served result is exactly what the
// inner evaluator would have produced, the search trajectory is
// preserved by construction. counter tallies first-time points served
// from a sibling's report.
func accessPruneEvaluator(acc *access.Analysis, sp *space.Space, inner tuner.Evaluator, counter *int, tr *obs.Trace) tuner.Evaluator {
	type capped struct {
		id  string
		cap int
	}
	var caps []capped
	for _, id := range acc.LoopOrder {
		if c := acc.PortCap(id); c > 0 {
			caps = append(caps, capped{id: id, cap: c})
		}
	}
	// The mutex covers cache/seen/counter; the caps are read-only after
	// construction.
	var mu sync.Mutex
	cache := map[string]tuner.Result{}
	seen := map[string]bool{}
	canonicalKey := func(pt space.Point) string {
		var canon space.Point
		for _, c := range caps {
			if pt[c.id+".parallel"] > c.cap {
				if canon == nil {
					canon = pt.Clone()
				}
				canon[c.id+".parallel"] = c.cap
			}
		}
		if canon == nil {
			return pt.Key()
		}
		return canon.Key()
	}
	return func(pt space.Point) tuner.Result {
		key := canonicalKey(pt)
		ptKey := pt.Key()
		mu.Lock()
		if r, ok := cache[key]; ok {
			r.Point = pt
			if seen[ptKey] {
				// Exact repeat: a memoized HLS report costs no synthesis
				// re-run, mirroring the inner evaluator's cache.
				r.Minutes = 0
			} else {
				seen[ptKey] = true
				*counter++
				if tr != nil {
					tr.Event("dse", "access-collapse",
						obs.Str("point", ptKey), obs.Str("canonical", key))
					tr.Count("dse.access_pruned", 1)
				}
			}
			mu.Unlock()
			return r
		}
		seen[ptKey] = true
		mu.Unlock()
		r := inner(pt)
		mu.Lock()
		cache[key] = r
		mu.Unlock()
		return r
	}
}
