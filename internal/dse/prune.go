package dse

import (
	"sync"

	"s2fa/internal/cir"
	"s2fa/internal/depend"
	"s2fa/internal/lint"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// pruneMinutes is the virtual cost of a static rejection: a compiler
// check, microseconds of real work, against minutes for an HLS run. Kept
// slightly above zero so pruned proposals still advance the virtual
// clock (a worker cannot loop infinitely for free).
const pruneMinutes = 0.001

// staticPruneEvaluator wraps an evaluator with the lint legality pass
// (pass 4): a point whose directives carry a lint *error* is rejected for
// pruneMinutes instead of being handed to Merlin + the HLS estimator. By
// the lint severity contract those points are exactly the ones the inner
// evaluator would have rejected anyway (annotate error or flatten
// infeasibility), so pruning never changes which designs are reachable —
// only how much virtual time illegal proposals burn. counter tallies the
// skips.
func staticPruneEvaluator(k *cir.Kernel, sp *space.Space, inner tuner.Evaluator, counter *int, tr *obs.Trace) tuner.Evaluator {
	chk := lint.NewChecker(k)
	// The checker is read-only after construction; the mutex only guards
	// the skip counter so the wrapper is safe for concurrent callers.
	var mu sync.Mutex
	return func(pt space.Point) tuner.Result {
		d := sp.Directives(pt)
		if chk.Directives(d.Loops, d.BitWidths).HasErrors() {
			mu.Lock()
			*counter++
			mu.Unlock()
			if tr != nil {
				tr.Event("dse", "prune", obs.Str("point", pt.Key()))
				tr.Count("dse.pruned", 1)
			}
			return tuner.Result{
				Point:     pt,
				Objective: rejectPenalty,
				Feasible:  false,
				Minutes:   pruneMinutes,
			}
		}
		return inner(pt)
	}
}

// dependPruneEvaluator wraps an evaluator with dependence-verdict
// collapsing (internal/depend): parallel lanes on an unpipelined loop
// whose iterations provably contend on carried arrays are a hardware
// no-op — the scheduler serializes the chain and the binder maps it onto
// a single datapath instance (hls model.inertLanes), so the HLS report
// is identical to the parallel=1 sibling's. Each such point maps to the
// canonical sibling's key: the first evaluation synthesizes, every later
// equivalent point is served its bit-identical report without touching
// Merlin + the estimator. Because the served result is exactly what the
// inner evaluator would have produced, the search trajectory is
// preserved by construction. Pipelined loops never collapse: carried
// lanes there execute as a wavefront (Smith-Waterman's profitable
// design), which the verdicts explicitly permit and the distance-scaled
// II model rewards. counter tallies first-time points served from a
// sibling's report.
func dependPruneEvaluator(dep *depend.Analysis, sp *space.Space, inner tuner.Evaluator, counter *int, tr *obs.Trace) tuner.Evaluator {
	var serializing []string
	for _, id := range dep.Order {
		if dep.Serializing(id) {
			serializing = append(serializing, id)
		}
	}
	// The mutex covers cache/seen/counter; the verdicts are read-only
	// after construction.
	var mu sync.Mutex
	cache := map[string]tuner.Result{}
	seen := map[string]bool{}
	canonicalKey := func(pt space.Point) string {
		var canon space.Point
		for _, id := range serializing {
			if pt[id+".pipeline"] == space.PipeOffVal && pt[id+".parallel"] > 1 {
				if canon == nil {
					canon = pt.Clone()
				}
				canon[id+".parallel"] = 1
			}
		}
		if canon == nil {
			return pt.Key()
		}
		return canon.Key()
	}
	return func(pt space.Point) tuner.Result {
		key := canonicalKey(pt)
		ptKey := pt.Key()
		mu.Lock()
		if r, ok := cache[key]; ok {
			r.Point = pt
			if seen[ptKey] {
				// Exact repeat: a memoized HLS report costs no synthesis
				// re-run, mirroring the inner evaluator's cache.
				r.Minutes = 0
			} else {
				seen[ptKey] = true
				*counter++
				if tr != nil {
					tr.Event("dse", "depend-collapse",
						obs.Str("point", ptKey), obs.Str("canonical", key))
					tr.Count("dse.depend_pruned", 1)
				}
			}
			mu.Unlock()
			return r
		}
		seen[ptKey] = true
		mu.Unlock()
		r := inner(pt)
		mu.Lock()
		cache[key] = r
		mu.Unlock()
		return r
	}
}
