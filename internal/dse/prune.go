package dse

import (
	"sync"

	"s2fa/internal/cir"
	"s2fa/internal/lint"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// pruneMinutes is the virtual cost of a static rejection: a compiler
// check, microseconds of real work, against minutes for an HLS run. Kept
// slightly above zero so pruned proposals still advance the virtual
// clock (a worker cannot loop infinitely for free).
const pruneMinutes = 0.001

// staticPruneEvaluator wraps an evaluator with the lint legality pass
// (pass 4): a point whose directives carry a lint *error* is rejected for
// pruneMinutes instead of being handed to Merlin + the HLS estimator. By
// the lint severity contract those points are exactly the ones the inner
// evaluator would have rejected anyway (annotate error or flatten
// infeasibility), so pruning never changes which designs are reachable —
// only how much virtual time illegal proposals burn. counter tallies the
// skips.
func staticPruneEvaluator(k *cir.Kernel, sp *space.Space, inner tuner.Evaluator, counter *int, tr *obs.Trace) tuner.Evaluator {
	chk := lint.NewChecker(k)
	// The checker is read-only after construction; the mutex only guards
	// the skip counter so the wrapper is safe for concurrent callers.
	var mu sync.Mutex
	return func(pt space.Point) tuner.Result {
		d := sp.Directives(pt)
		if chk.Directives(d.Loops, d.BitWidths).HasErrors() {
			mu.Lock()
			*counter++
			mu.Unlock()
			if tr != nil {
				tr.Event("dse", "prune", obs.Str("point", pt.Key()))
				tr.Count("dse.pruned", 1)
			}
			return tuner.Result{
				Point:     pt,
				Objective: rejectPenalty,
				Feasible:  false,
				Minutes:   pruneMinutes,
			}
		}
		return inner(pt)
	}
}
