package dse

import (
	"reflect"
	"testing"

	"s2fa/internal/depend"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// TestDependPruneEvaluatorShortCircuit checks the verdict collapse in
// isolation: unpipelined parallel lanes on the H-carried Smith-Waterman
// cell loop are a hardware no-op, so the point must be served its
// parallel=1 sibling's report without reaching the inner evaluator,
// while the same factor with pipelining (the wavefront design) passes
// through.
func TestDependPruneEvaluatorShortCircuit(t *testing.T) {
	a, sp := swSetup(t)
	k, _ := a.Kernel()

	innerCalls := 0
	inner := func(pt space.Point) tuner.Result {
		innerCalls++
		return tuner.Result{Point: pt, Objective: 1, Feasible: true, Minutes: 5}
	}
	pruned := 0
	eval := dependPruneEvaluator(depend.Analyze(k), sp, inner, &pruned, nil)

	// Evaluate the canonical sibling first, then the contradicting point:
	// L2 carries the cell recurrence through H, so parallel lanes without
	// a pipeline provably serialize and share the sibling's report.
	sibling := sp.AreaSeed()
	sibling["L2.parallel"] = 1
	sibling["L2.pipeline"] = space.PipeOffVal
	eval(sibling)
	if innerCalls != 1 {
		t.Fatalf("canonical sibling: innerCalls=%d, want 1", innerCalls)
	}

	contradicting := sp.AreaSeed()
	contradicting["L2.parallel"] = 4
	contradicting["L2.pipeline"] = space.PipeOffVal
	r := eval(contradicting)
	if pruned != 1 || innerCalls != 1 {
		t.Fatalf("contradicting point: pruned=%d innerCalls=%d, want 1/1", pruned, innerCalls)
	}
	if !r.Feasible || r.Objective != 1 || r.Minutes != 5 {
		t.Errorf("collapsed result = %+v, want the sibling's report at full minutes", r)
	}
	if !reflect.DeepEqual(r.Point, contradicting) {
		t.Errorf("collapsed result kept point %v, want the evaluated point %v", r.Point, contradicting)
	}

	// An exact repeat is a memoized report: no synthesis minutes, counter
	// unchanged.
	rr := eval(contradicting)
	if pruned != 1 || innerCalls != 1 || rr.Minutes != 0 {
		t.Errorf("repeat: pruned=%d innerCalls=%d minutes=%v, want 1/1/0", pruned, innerCalls, rr.Minutes)
	}

	// The wavefront variant — same lanes, pipelined — is the profitable
	// S-W design and must never collapse.
	wavefront := sp.AreaSeed()
	wavefront["L2.parallel"] = 4
	wavefront["L2.pipeline"] = space.PipeOnVal
	rw := eval(wavefront)
	if innerCalls != 2 || pruned != 1 {
		t.Errorf("wavefront point: innerCalls=%d pruned=%d, want a fresh inner call and counter unchanged", innerCalls, pruned)
	}
	if !rw.Feasible || rw.Minutes != 5 {
		t.Errorf("wavefront result not passed through: %+v", rw)
	}
}

// TestDependPruneFewerEstimationsSameBest is the ISSUE acceptance
// criterion: on S-W at seed 42, dependence-driven pruning must cut fresh
// HLS estimations below the prior 147 while arriving at a byte-identical
// best design.
func TestDependPruneFewerEstimationsSameBest(t *testing.T) {
	a, sp0 := swSetup(t)
	k, _ := a.Kernel()
	_ = sp0

	run := func(prune bool) *Outcome {
		sp := space.Identify(k)
		eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
		cfg := S2FAConfig(42)
		cfg.DependPrune = prune
		return Run(k, sp, eval, cfg)
	}
	base, guarded := run(false), run(true)

	if base.DependPruned != 0 {
		t.Errorf("unguarded run reported dependence pruning: %d", base.DependPruned)
	}
	if guarded.DependPruned == 0 {
		t.Error("guarded run pruned nothing; S-W proposes unpipelined parallel lanes on carried loops")
	}
	if !reflect.DeepEqual(base.Best.Point, guarded.Best.Point) {
		t.Errorf("best point changed:\n  base    %v\n  guarded %v", base.Best.Point, guarded.Best.Point)
	}
	if base.Best.Objective != guarded.Best.Objective {
		t.Errorf("best objective changed: %v -> %v", base.Best.Objective, guarded.Best.Objective)
	}
	if !reflect.DeepEqual(base.Trajectory, guarded.Trajectory) {
		t.Errorf("trajectory changed:\n  base    %v\n  guarded %v", base.Trajectory, guarded.Trajectory)
	}
	if base.Evaluations != guarded.Evaluations {
		t.Errorf("evaluation count changed: %d -> %d", base.Evaluations, guarded.Evaluations)
	}
	baseHLS := base.Evaluations - base.StaticallyPruned - base.AccessPruned - base.RangeCollapsed
	guardedHLS := guarded.Evaluations - guarded.StaticallyPruned - guarded.DependPruned -
		guarded.AccessPruned - guarded.RangeCollapsed
	if guardedHLS >= 147 {
		t.Errorf("fresh HLS estimations = %d, want < 147 (pre-verdict reference)", guardedHLS)
	}
	if guardedHLS >= baseHLS {
		t.Errorf("pruning saved no estimations: %d vs %d", guardedHLS, baseHLS)
	}
	t.Logf("S-W seed 42: fresh HLS estimations %d -> %d (depend-pruned %d)",
		baseHLS, guardedHLS, guarded.DependPruned)
}
