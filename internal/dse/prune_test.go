package dse

import (
	"math"
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

func swSetup(t *testing.T) (*apps.App, *space.Space) {
	t.Helper()
	a := apps.Get("S-W")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return a, space.Identify(k)
}

// TestStaticPruneEvaluatorShortCircuit checks the guard in isolation: a
// statically illegal point (flatten over the S-W while-loop traceback)
// must be rejected for pruneMinutes without reaching the inner evaluator,
// and a legal point must pass through untouched.
func TestStaticPruneEvaluatorShortCircuit(t *testing.T) {
	a, sp := swSetup(t)
	k, _ := a.Kernel()

	innerCalls := 0
	inner := func(pt space.Point) tuner.Result {
		innerCalls++
		return tuner.Result{Point: pt, Objective: 1, Feasible: true, Minutes: 5}
	}
	pruned := 0
	eval := staticPruneEvaluator(k, sp, inner, &pruned, nil)

	// The task loop nests the while-loop traceback, so flattening it is a
	// provable lint error (RuleFlattenVarTrip).
	illegal := sp.AreaSeed()
	illegal[k.TaskLoopID+".pipeline"] = space.PipeFlattenVal
	r := eval(illegal)
	if pruned != 1 || innerCalls != 0 {
		t.Fatalf("illegal point: pruned=%d innerCalls=%d, want 1/0", pruned, innerCalls)
	}
	if r.Feasible || r.Objective != rejectPenalty || r.Minutes != pruneMinutes {
		t.Errorf("pruned result = %+v, want infeasible rejectPenalty at pruneMinutes", r)
	}

	legal := sp.AreaSeed()
	before := pruned
	rl := eval(legal)
	if innerCalls != 1 || pruned != before {
		t.Errorf("legal point: innerCalls=%d pruned=%d, want inner called once and counter unchanged", innerCalls, pruned)
	}
	if !rl.Feasible || rl.Minutes != 5 {
		t.Errorf("legal result not passed through: %+v", rl)
	}
}

// TestStaticPruneSameQualityFewerEvaluations is the paper-facing claim
// (ISSUE acceptance criterion): on S-W, the guarded run must reach the
// same best design while spending HLS estimation on measurably fewer
// points — the statically pruned proposals cost microseconds, not
// synthesis minutes. Both runs share seed 5 (picked so neither half of
// the controlled pair is trapped in the wavefront-free local optimum:
// the clock shift from cheap rejections can tip a borderline seed), so
// outcomes are exact.
func TestStaticPruneSameQualityFewerEvaluations(t *testing.T) {
	a, sp := swSetup(t)
	k, _ := a.Kernel()

	run := func(prune bool) *Outcome {
		eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
		cfg := S2FAConfig(5)
		cfg.StaticPrune = prune
		// Isolate the legality guard: dependence collapsing is exercised by
		// its own controlled pair in dependprune_test.go.
		cfg.DependPrune = false
		return Run(k, sp, eval, cfg)
	}
	base, guarded := run(false), run(true)

	if base.StaticallyPruned != 0 || base.PrunedDomainValues != 0 {
		t.Errorf("unguarded run reported pruning: %d/%d", base.StaticallyPruned, base.PrunedDomainValues)
	}
	if guarded.StaticallyPruned == 0 {
		t.Error("guarded run pruned nothing; S-W must reject flatten over the while traceback")
	}
	if guarded.PrunedDomainValues != 1 {
		t.Errorf("PrunedDomainValues = %d, want exactly 1 (flatten on the traceback nest)", guarded.PrunedDomainValues)
	}
	if math.Abs(guarded.Best.Objective-base.Best.Objective) > 1e-12*base.Best.Objective {
		t.Errorf("pruning changed the best design quality: %.9f vs %.9f",
			guarded.Best.Objective, base.Best.Objective)
	}
	baseHLS := base.Evaluations - base.StaticallyPruned
	guardedHLS := guarded.Evaluations - guarded.StaticallyPruned
	if guardedHLS >= baseHLS {
		t.Errorf("guarded run did not save HLS evaluations: %d vs %d", guardedHLS, baseHLS)
	}
	t.Logf("best=%.6f HLS evals %d -> %d (%d statically pruned, %d domain value)",
		guarded.Best.Objective, baseHLS, guardedHLS, guarded.StaticallyPruned, guarded.PrunedDomainValues)
}

// TestSummaryReportsPruneCounters pins the Fig. 3 summary line format the
// exp package surfaces.
func TestSummaryReportsPruneCounters(t *testing.T) {
	o := &Outcome{KernelName: "k", Best: tuner.Result{Objective: 1, Feasible: true}}
	if s := o.Summary(); strings.Contains(s, "statically-pruned") {
		t.Errorf("summary mentions pruning with zero counters: %s", s)
	}
	o.StaticallyPruned, o.PrunedDomainValues = 7, 2
	if s := o.Summary(); !strings.Contains(s, "statically-pruned=7(+2 domain values)") {
		t.Errorf("summary missing prune counters: %s", s)
	}
}
