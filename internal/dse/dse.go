package dse

import (
	"fmt"
	"math"

	"s2fa/internal/access"
	"s2fa/internal/cir"
	"s2fa/internal/depend"
	"s2fa/internal/fpga"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// StopReason classifies why a DSE run terminated — without it an
// entropy-converged run and one killed by the 4-hour budget are
// indistinguishable in the Fig. 3 summary.
type StopReason string

const (
	// StopEntropyConverged: every partition ended because its stopping
	// criterion fired (within budget).
	StopEntropyConverged StopReason = "entropy-converged"
	// StopBudgetExhausted: the virtual time limit or the evaluation
	// budget cut the search short.
	StopBudgetExhausted StopReason = "budget-exhausted"
	// StopSpaceExhausted: every partition ran out of unevaluated points
	// before any criterion or budget fired.
	StopSpaceExhausted StopReason = "space-exhausted"
)

// TrajPoint is one point of the best-so-far trajectory: the virtual DSE
// wall-clock (minutes) at which the incumbent objective (estimated kernel
// seconds) was achieved. Fig. 3 of the paper plots exactly this curve.
type TrajPoint struct {
	Minutes   float64
	Objective float64
}

// Outcome is the result of one DSE run.
type Outcome struct {
	KernelName string
	Best       tuner.Result
	// FirstFeasible is the objective of the first feasible point
	// evaluated; Fig. 3 normalizes trajectories against the vanilla
	// run's random first point.
	FirstFeasible float64
	// FirstFeasibleMinutes is the virtual time at which the first
	// feasible point appeared (NaN if none did). Seed generation's
	// headline effect: with the conservative seed this is the very first
	// evaluation; without it the search can stay trapped in the
	// infeasible region for hours (paper §4.3.2).
	FirstFeasibleMinutes float64
	Trajectory           []TrajPoint
	TotalMinutes         float64
	Evaluations          int
	Partitions           []Partition
	// StaticallyPruned counts proposed points the lint legality pass
	// rejected before evaluation (Config.StaticPrune); each cost
	// microseconds instead of virtual synthesis minutes.
	StaticallyPruned int
	// PrunedDomainValues counts parameter-domain values space.PruneStatic
	// removed before the search started (e.g. flatten on a loop with a
	// variable-trip sub-loop).
	PrunedDomainValues int
	// DependPruned counts evaluations served from a dependence-equivalent
	// design's HLS report instead of a fresh estimation
	// (Config.DependPrune): parallel lanes on an unpipelined loop that
	// provably serializes are a hardware no-op, so the point shares its
	// parallel=1 sibling's report.
	DependPruned int
	// AccessPruned counts evaluations served from an access-equivalent
	// design's HLS report instead of a fresh estimation
	// (Config.AccessPrune): parallel factors above a loop's BRAM
	// port-cap replicate datapaths the banks cannot feed, so the point
	// shares its cap-clamped sibling's report.
	AccessPruned int
	// RangeCollapsed counts evaluations served from a width-equivalent
	// design's HLS report instead of a fresh estimation
	// (Config.RestrictRanges); the value-range facts prove the model
	// cannot tell the points apart.
	RangeCollapsed int
	// RangeRestrictedValues counts bit-width domain values
	// space.RestrictFromRanges proved dominated by a narrower width.
	RangeRestrictedValues int
	// StopReason records what ended the run: entropy-converged,
	// budget-exhausted, or space-exhausted.
	StopReason StopReason
}

// BestAt returns the incumbent objective at virtual time t minutes
// (+Inf before the first feasible point).
func (o *Outcome) BestAt(t float64) float64 {
	best := math.Inf(1)
	for _, p := range o.Trajectory {
		if p.Minutes > t {
			break
		}
		best = p.Objective
	}
	return best
}

// Engine selects how the simulated workers execute.
type Engine int

const (
	// EngineSequential steps the workers round-robin on the calling
	// goroutine — the reference oracle every other engine is measured
	// against.
	EngineSequential Engine = iota
	// EngineParallel runs evaluations on a pool of real goroutines while
	// a merge loop replays the virtual-clock schedule, producing an
	// Outcome byte-identical to EngineSequential at any GOMAXPROCS. It
	// requires the evaluator handed to Run to be pure and
	// concurrency-safe (NewPureEvaluator); memoization, tracing, and
	// cache accounting are layered on by the engine itself.
	EngineParallel
)

// Config selects the DSE operating mode.
type Config struct {
	// Workers is the number of simulated CPU cores (8 in the paper).
	Workers int
	// Engine selects sequential reference execution or the concurrent
	// engine (see Engine constants). The zero value is sequential.
	Engine Engine
	// Parallelism is the evaluation-pool size for EngineParallel; values
	// < 1 default to GOMAXPROCS. It never affects results, only
	// wall-clock time.
	Parallelism int
	// TimeLimitMinutes bounds each worker's virtual clock (vanilla
	// OpenTuner's only systematic criterion: four hours).
	TimeLimitMinutes float64
	// Stopper is the per-partition early-stopping criterion.
	Stopper Stopper
	// Partition enables decision-tree design-space partitioning; nil
	// runs a single partition over the whole space.
	Partition *PartitionConfig
	// Seeded injects the performance-driven and area-driven seeds at the
	// start of each partition (paper §4.3.2); otherwise exploration
	// starts from a random point, like vanilla OpenTuner.
	Seeded bool
	// BatchPerIter is the number of candidates evaluated concurrently per
	// search iteration inside one partition. Vanilla OpenTuner spends its
	// 8 cores evaluating the top-8 candidates of a single search; S2FA
	// gives each partition one core (paper footnote 3).
	BatchPerIter int
	// Seed drives all pseudo-randomness.
	Seed int64
	// MaxEvaluations is a safety valve for tiny spaces.
	MaxEvaluations int
	// StaticPrune runs the lint legality pass before every evaluation and
	// shrinks statically-illegal parameter domains up front, so provably
	// rejected points never reach the HLS estimator (AutoDSE-style static
	// pruning; outcome counters record both effects).
	StaticPrune bool
	// DependPrune guards the evaluator with the exact loop-dependence
	// verdicts: parallel factors that contradict a proven serialization
	// (unpipelined lanes contending on carried arrays) are hardware
	// no-ops — the HLS model binds the serial lanes to one datapath
	// instance — so such points collapse onto their parallel=1 sibling's
	// report instead of reaching Merlin + estimation. Like StaticPrune
	// and RestrictRanges, the search trajectory and best design are
	// preserved exactly.
	DependPrune bool
	// AccessPrune guards the evaluator with the static access-pattern
	// analysis: parallel factors above a loop's BRAM port-cap
	// (internal/access PortCap — more direct array accesses per
	// iteration than the banks have ports for) are never instantiated
	// by the binder, so such points collapse onto their cap-clamped
	// sibling's report instead of reaching Merlin + estimation. Like
	// the other guards, the search trajectory and best design are
	// preserved exactly.
	AccessPrune bool
	// RestrictRanges uses the abstract interpreter's proven value ranges
	// to collapse interface bit-widths the HLS model cannot distinguish:
	// equivalent points share one estimation, and the dominated domain
	// values space.RestrictFromRanges would drop are counted. Like
	// StaticPrune, the search trajectory and best design are preserved
	// exactly.
	RestrictRanges bool
	// Device supplies the DDR interface model for RestrictRanges; nil
	// defaults to the paper's VU9P.
	Device *fpga.Device
	// Depend and Access optionally supply precomputed analyses of the
	// explored kernel (e.g. from the compile cache) consumed by the
	// DependPrune/AccessPrune guard assembly instead of re-running
	// depend.Analyze/access.Analyze. Both analyses are deterministic
	// pure functions of the kernel, so supplying them never changes the
	// search trajectory — only setup cost. They must describe the same
	// kernel Run receives; nil fields are computed on demand.
	Depend *depend.Analysis
	Access *access.Analysis
	// Trace, when set, receives the search telemetry: per-partition
	// spans on per-worker tracks, per-evaluation events (disposition,
	// objective, virtual clock), entropy-window values, bandit arm
	// selections, and incumbent updates. Tracing is strictly read-only —
	// a traced run follows a byte-identical trajectory.
	Trace *obs.Trace
}

// VanillaConfig reproduces the OpenTuner baseline of Fig. 3: no
// partitioning, no seeds, no early stop, 8 cores evaluating 8 candidates
// per iteration, 4-hour limit.
func VanillaConfig(seed int64) Config {
	return Config{
		Workers:          8,
		TimeLimitMinutes: 240,
		Stopper:          NeverStopper{},
		Seeded:           false,
		BatchPerIter:     8,
		Seed:             seed,
		MaxEvaluations:   200_000,
	}
}

// S2FAConfig reproduces the full S2FA DSE: decision-tree partitions
// scheduled FCFS over 8 cores, two seeds per partition, Shannon-entropy
// early stopping (4-hour safety limit).
func S2FAConfig(seed int64) Config {
	pc := DefaultPartitionConfig()
	return Config{
		Workers:          8,
		TimeLimitMinutes: 240,
		Stopper:          NewEntropyStopper(),
		Partition:        &pc,
		Seeded:           true,
		BatchPerIter:     1,
		Seed:             seed,
		MaxEvaluations:   200_000,
		StaticPrune:      true,
		DependPrune:      true,
		AccessPrune:      true,
		RestrictRanges:   true,
	}
}

// TrivialStopConfig is the S2FA flow with the naive
// no-improvement-for-10-iterations criterion, used for the stopping
// ablation in §5.2.
func TrivialStopConfig(seed int64) Config {
	c := S2FAConfig(seed)
	c.Stopper = NewTrivialStopper()
	return c
}

// Run executes the DSE for kernel k over space sp with the given
// evaluator and configuration, on a virtual clock.
func Run(k *cir.Kernel, sp *space.Space, eval tuner.Evaluator, cfg Config) *Outcome {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.BatchPerIter <= 0 {
		cfg.BatchPerIter = 1
	}
	if cfg.Stopper == nil {
		cfg.Stopper = NeverStopper{}
	}
	if cfg.MaxEvaluations <= 0 {
		cfg.MaxEvaluations = 200_000
	}
	if cfg.Engine == EngineParallel {
		return runParallel(k, sp, eval, cfg)
	}

	out := newOutcome(k)
	eval = wrapEvaluator(k, sp, eval, cfg, out)
	var parts []Partition
	if cfg.Partition != nil {
		parts = BuildPartitions(sp, k, eval, *cfg.Partition, cfg.Seed)
	} else {
		parts = []Partition{{Sub: sp}}
	}
	out.Partitions = parts

	sched := newScheduler(cfg, parts, eval, out)
	sched.run()
	return finishOutcome(out, sched)
}

func newOutcome(k *cir.Kernel) *Outcome {
	return &Outcome{KernelName: k.Name, FirstFeasible: math.NaN(), FirstFeasibleMinutes: math.NaN()}
}

// finishOutcome stamps the scheduler's termination summary onto the
// outcome, shared by both engines.
func finishOutcome(out *Outcome, sched *scheduler) *Outcome {
	out.TotalMinutes = sched.totalMinutes()
	out.StopReason = sched.stopReason()
	if !out.Best.Feasible {
		out.Best = tuner.Result{Objective: math.Inf(1)}
	}
	return out
}

// wrapEvaluator layers the optional static-prune and range-collapse
// guards over the base evaluator, mutating sp's bookkeeping counters on
// out exactly as the sequential engine always has. Both engines share
// this assembly so the evaluator chain — and therefore every cache-hit
// and prune decision — is identical between them.
func wrapEvaluator(k *cir.Kernel, sp *space.Space, eval tuner.Evaluator, cfg Config, out *Outcome) tuner.Evaluator {
	if cfg.RestrictRanges {
		// Collapse width-equivalent points onto shared HLS reports and
		// count the dominated domain values. As with StaticPrune below,
		// the space itself is left intact so the partition structure and
		// search trajectory are byte-identical to a run without the
		// optimization — only the estimator invocation count drops.
		dev := cfg.Device
		if dev == nil {
			dev = fpga.VU9P()
		}
		_, out.RangeRestrictedValues = space.RestrictFromRanges(sp, dev)
		eval = rangeCollapseEvaluator(k, sp, dev, eval, &out.RangeCollapsed, cfg.Trace)
	}
	if cfg.AccessPrune {
		// Collapse parallel factors above a loop's BRAM port-cap onto the
		// cap-clamped sibling's report. Layered inside DependPrune so the
		// dependence collapse intercepts its (disjoint, parallel=1) class
		// first, keeping both counters' meanings stable.
		acc := cfg.Access
		if acc == nil {
			acc = access.Analyze(k)
		}
		eval = accessPruneEvaluator(acc, sp, eval, &out.AccessPruned, cfg.Trace)
	}
	if cfg.DependPrune {
		// Collapse points whose parallel factors contradict a proven loop
		// serialization onto their parallel=1 siblings before they reach
		// Merlin + the estimator. Layered inside StaticPrune: a point must
		// first be legal before its dependence profile is worth consulting.
		dep := cfg.Depend
		if dep == nil {
			dep = depend.Analyze(k)
		}
		eval = dependPruneEvaluator(dep, sp, eval, &out.DependPruned, cfg.Trace)
	}
	if cfg.StaticPrune {
		// Guard the evaluator with the lint legality pass: statically
		// illegal proposals cost microseconds instead of synthesis
		// minutes. The space itself is left intact — shrinking domains
		// here would change the partition structure and thus the whole
		// search trajectory; the guard preserves it exactly. (Callers who
		// want the smaller space can apply space.PruneStatic themselves
		// before Run; PrunedDomainValues reports what it would remove.)
		_, out.PrunedDomainValues = space.PruneStatic(sp, k)
		eval = staticPruneEvaluator(k, sp, eval, &out.StaticallyPruned, cfg.Trace)
	}
	return eval
}

// worker is one simulated CPU core working through partitions.
type worker struct {
	id      int
	clock   float64
	driver  *tuner.Driver
	stopper Stopper
	part    int // index into partitions; -1 when idle/done
	seeds   []space.Point
	done    bool
	// span is the open partition trace span (tid = id+1); pevals counts
	// this partition's evaluations for the span's closing args.
	span   *obs.Span
	pevals int
	// hasPending, pendingSeed, and pendingProps hold the parallel
	// engine's pre-proposed next iteration (dispatched to the evaluation
	// pool ahead of the merge loop; see parallel.go). The sequential
	// engine never sets them.
	hasPending   bool
	pendingSeed  *space.Point
	pendingProps []tuner.Proposal
}

type scheduler struct {
	cfg      Config
	parts    []Partition
	eval     tuner.Evaluator
	out      *Outcome
	workers  []*worker
	nextPart int
	bestObj  float64
	evals    int
	// Termination-cause flags behind Outcome.StopReason.
	sawTimeout  bool
	sawStop     bool
	hitMaxEvals bool
	// onAssign, when set, runs after a worker receives a new partition
	// (including the initial assignment). The parallel engine hooks it to
	// pre-propose the worker's next batch and dispatch the evaluations to
	// the goroutine pool ahead of the merge loop.
	onAssign func(w *worker)
}

func newScheduler(cfg Config, parts []Partition, eval tuner.Evaluator, out *Outcome) *scheduler {
	return newSchedulerHooked(cfg, parts, eval, out, nil)
}

func newSchedulerHooked(cfg Config, parts []Partition, eval tuner.Evaluator, out *Outcome, onAssign func(*worker)) *scheduler {
	s := &scheduler{cfg: cfg, parts: parts, eval: eval, out: out, bestObj: math.Inf(1), onAssign: onAssign}
	s.start()
	return s
}

// start performs the initial FCFS partition hand-out. Split from the
// constructor so the parallel engine can install its onAssign hook
// first.
func (s *scheduler) start() {
	for i := 0; i < s.cfg.Workers; i++ {
		w := &worker{id: i, part: -1}
		s.workers = append(s.workers, w)
		s.assign(w)
	}
}

// assign hands the next queued partition to w (first-come-first-serve,
// paper §4.3.1) or marks it done.
func (s *scheduler) assign(w *worker) {
	if s.nextPart >= len(s.parts) {
		w.done = true
		w.part = -1
		return
	}
	idx := s.nextPart
	s.nextPart++
	p := s.parts[idx]
	w.part = idx
	w.driver = tuner.NewDriver(p.Sub, s.eval, s.cfg.Seed*7919+int64(idx)*104729+1)
	w.driver.Trace = s.cfg.Trace
	w.driver.TID = w.id + 1
	w.stopper = s.cfg.Stopper.Clone()
	w.seeds = nil
	if s.cfg.Seeded {
		w.seeds = []space.Point{p.Sub.PerformanceSeed(), p.Sub.AreaSeed()}
	} else {
		w.seeds = []space.Point{p.Sub.RandomPoint(w.driver.Rng)}
	}
	w.done = false
	w.pevals = 0
	if s.cfg.Trace != nil {
		w.span = s.cfg.Trace.BeginT(w.id+1, "dse", "partition",
			obs.Int("part", idx),
			obs.Str("rule", p.String()),
			obs.Vmin(w.clock))
	}
	if s.onAssign != nil {
		s.onAssign(w)
	}
}

// endPartitionSpan closes the worker's open partition span with its
// outcome: why it ended, how many evaluations it spent, and the virtual
// clock at the end.
func (s *scheduler) endPartitionSpan(w *worker, cause string) {
	if w.span == nil {
		return
	}
	w.span.End(
		obs.Str("cause", cause),
		obs.Int("evals", w.pevals),
		obs.Vmin(w.clock))
	w.span = nil
}

// run advances the virtual clock: repeatedly pick the worker with the
// earliest clock and execute its next evaluation batch.
func (s *scheduler) run() {
	for {
		w := s.earliest()
		if w == nil {
			return
		}
		if s.evals >= s.cfg.MaxEvaluations {
			s.hitMaxEvals = true
			for _, w := range s.workers {
				s.endPartitionSpan(w, "max-evaluations")
			}
			return
		}
		s.step(w)
	}
}

func (s *scheduler) earliest() *worker {
	var best *worker
	for _, w := range s.workers {
		if w.done {
			continue
		}
		if best == nil || w.clock < best.clock {
			best = w
		}
	}
	return best
}

func (s *scheduler) step(w *worker) {
	if w.clock >= s.cfg.TimeLimitMinutes {
		s.sawTimeout = true
		s.endPartitionSpan(w, "timeout")
		w.done = true
		w.part = -1
		return
	}
	var results []tuner.Result
	var iterMinutes float64
	if len(w.seeds) > 0 {
		seedPt := w.seeds[0]
		w.seeds = w.seeds[1:]
		r := w.driver.InjectSeed(seedPt)
		results = []tuner.Result{r}
		iterMinutes = r.Minutes
	} else {
		results = w.driver.Step(s.cfg.BatchPerIter)
		if len(results) == 0 {
			// Partition exhausted (tiny sub-space).
			s.finishPartition(w, "exhausted")
			return
		}
		// Batched candidates run concurrently on the worker's cores
		// (vanilla mode): the iteration costs the slowest evaluation.
		for _, r := range results {
			if r.Minutes > iterMinutes {
				iterMinutes = r.Minutes
			}
		}
	}
	s.absorb(w, results, iterMinutes)
}

// absorb advances w's virtual clock by one iteration and folds its
// results into the shared search state: evaluation counts, trace events,
// first-feasible and incumbent tracking, stopper observation, and the
// partition hand-off when the stopper fires or the clock hits the
// budget. Both engines funnel every result batch through this method —
// it is the single place scheduling accounting happens, which is what
// makes the parallel engine's replay byte-identical by construction.
func (s *scheduler) absorb(w *worker, results []tuner.Result, iterMinutes float64) {
	w.clock += iterMinutes
	if w.clock > s.cfg.TimeLimitMinutes {
		// The tool chain is killed at the wall-clock limit; the last
		// result still counts but the clock pins to the limit.
		w.clock = s.cfg.TimeLimitMinutes
	}

	tr := s.cfg.Trace
	// Virtual-clock metrics: how many simulated synthesis minutes each
	// iteration costs (0 for all-cached batches). Registry-only — no
	// trace event, no effect on the schedule.
	tr.Observe("dse_iter_minutes", iterMinutes)
	stop := false
	for _, r := range results {
		s.evals++
		s.out.Evaluations++
		w.pevals++
		if tr != nil {
			tr.EventT(w.id+1, "dse", "eval",
				obs.Vmin(w.clock),
				obs.Str("technique", r.Technique),
				obs.F64("objective", r.Objective),
				obs.Bool("feasible", r.Feasible),
				obs.F64("minutes", r.Minutes))
			tr.Count("dse.evals", 1)
		}
		if r.Feasible {
			tr.Observe("dse_objective_seconds", r.Objective)
		}
		if r.Feasible && math.IsNaN(s.out.FirstFeasible) {
			s.out.FirstFeasible = r.Objective
			s.out.FirstFeasibleMinutes = w.clock
			if tr != nil {
				tr.EventT(w.id+1, "dse", "first-feasible",
					obs.Vmin(w.clock), obs.F64("objective", r.Objective))
			}
		}
		newGlobalBest := r.Feasible && r.Objective < s.bestObj
		if newGlobalBest {
			s.bestObj = r.Objective
			s.out.Best = r
			s.out.Trajectory = append(s.out.Trajectory, TrajPoint{Minutes: w.clock, Objective: r.Objective})
			if tr != nil {
				tr.EventT(w.id+1, "dse", "incumbent",
					obs.Vmin(w.clock), obs.F64("objective", r.Objective))
				tr.Count("dse.incumbents", 1)
			}
		}
		localBest := w.driver.DB.Best()
		newLocalBest := localBest != nil && r.Feasible && r.Objective <= localBest.Objective
		fired := w.stopper.Observe(r, newLocalBest)
		if fired {
			stop = true
		}
		if tr != nil {
			// The entropy-window value H(D_i) the EntropyStopper just
			// computed — the curve the -summary sparkline plots.
			if es, ok := w.stopper.(*EntropyStopper); ok && es.hValid {
				tr.EventT(w.id+1, "dse", "entropy",
					obs.Vmin(w.clock),
					obs.F64("h", es.prevH),
					obs.Int("streak", es.streak),
					obs.Bool("fired", fired))
			}
		}
	}
	if stop {
		s.sawStop = true
		s.finishPartition(w, "converged")
	} else if w.clock >= s.cfg.TimeLimitMinutes {
		s.finishPartition(w, "timeout")
	}
}

func (s *scheduler) finishPartition(w *worker, cause string) {
	s.endPartitionSpan(w, cause)
	if w.clock >= s.cfg.TimeLimitMinutes {
		s.sawTimeout = true
		w.done = true
		w.part = -1
		return
	}
	s.assign(w)
}

// stopReason classifies the finished run. The budget cutting any worker
// short dominates (the search did not finish on its own terms); a run
// that completed because stoppers fired is converged; otherwise every
// partition simply ran out of points.
func (s *scheduler) stopReason() StopReason {
	switch {
	case s.hitMaxEvals || s.sawTimeout:
		return StopBudgetExhausted
	case s.sawStop:
		return StopEntropyConverged
	default:
		return StopSpaceExhausted
	}
}

func (s *scheduler) totalMinutes() float64 {
	var total float64
	for _, w := range s.workers {
		if w.clock > total {
			total = w.clock
		}
	}
	return total
}

// Summary renders a short human-readable report of the outcome.
func (o *Outcome) Summary() string {
	best := "none"
	if o.Best.Feasible {
		best = fmt.Sprintf("%.6fs", o.Best.Objective)
	}
	s := fmt.Sprintf("%s: best=%s evals=%d time=%.1fmin partitions=%d",
		o.KernelName, best, o.Evaluations, o.TotalMinutes, len(o.Partitions))
	if o.PrunedDomainValues > 0 || o.StaticallyPruned > 0 {
		s += fmt.Sprintf(" statically-pruned=%d(+%d domain values)",
			o.StaticallyPruned, o.PrunedDomainValues)
	}
	if o.DependPruned > 0 {
		s += fmt.Sprintf(" depend-pruned=%d", o.DependPruned)
	}
	if o.AccessPruned > 0 {
		s += fmt.Sprintf(" access-pruned=%d", o.AccessPruned)
	}
	if o.RangeCollapsed > 0 || o.RangeRestrictedValues > 0 {
		s += fmt.Sprintf(" range-collapsed=%d(+%d dominated widths)",
			o.RangeCollapsed, o.RangeRestrictedValues)
	}
	if o.StopReason != "" {
		s += fmt.Sprintf(" stop=%s", o.StopReason)
	}
	return s
}
