package dse

import (
	"reflect"
	"testing"

	"s2fa/internal/access"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// TestAccessPruneEvaluatorShortCircuit checks the port-cap collapse in
// isolation: the Smith-Waterman cell loop makes four direct accesses to
// the banked H matrix per iteration, so at most 128/4 = 32 lanes can be
// fed and any higher parallel factor must be served the cap-sibling's
// report without reaching the inner evaluator.
func TestAccessPruneEvaluatorShortCircuit(t *testing.T) {
	a, sp := swSetup(t)
	k, _ := a.Kernel()

	if c := access.Analyze(k).PortCap("L2"); c != 32 {
		t.Fatalf("S-W L2 port cap = %d, want 32 (4 direct H accesses, 128 element-ports)", c)
	}

	innerCalls := 0
	inner := func(pt space.Point) tuner.Result {
		innerCalls++
		return tuner.Result{Point: pt, Objective: 1, Feasible: true, Minutes: 5}
	}
	pruned := 0
	eval := accessPruneEvaluator(access.Analyze(k), sp, inner, &pruned, nil)

	sibling := sp.AreaSeed()
	sibling["L2.parallel"] = 32
	sibling["L2.pipeline"] = space.PipeOnVal
	eval(sibling)
	if innerCalls != 1 {
		t.Fatalf("cap sibling: innerCalls=%d, want 1", innerCalls)
	}

	starved := sp.AreaSeed()
	starved["L2.parallel"] = 39
	starved["L2.pipeline"] = space.PipeOnVal
	r := eval(starved)
	if pruned != 1 || innerCalls != 1 {
		t.Fatalf("port-starved point: pruned=%d innerCalls=%d, want 1/1", pruned, innerCalls)
	}
	if !r.Feasible || r.Objective != 1 || r.Minutes != 5 {
		t.Errorf("collapsed result = %+v, want the sibling's report at full minutes", r)
	}
	if !reflect.DeepEqual(r.Point, starved) {
		t.Errorf("collapsed result kept point %v, want the evaluated point %v", r.Point, starved)
	}

	// An exact repeat is a memoized report: no synthesis minutes, counter
	// unchanged.
	rr := eval(starved)
	if pruned != 1 || innerCalls != 1 || rr.Minutes != 0 {
		t.Errorf("repeat: pruned=%d innerCalls=%d minutes=%v, want 1/1/0", pruned, innerCalls, rr.Minutes)
	}

	// Below the cap every factor buys real lanes; such points must pass
	// through untouched.
	under := sp.AreaSeed()
	under["L2.parallel"] = 27
	under["L2.pipeline"] = space.PipeOnVal
	ru := eval(under)
	if innerCalls != 2 || pruned != 1 {
		t.Errorf("under-cap point: innerCalls=%d pruned=%d, want a fresh inner call and counter unchanged", innerCalls, pruned)
	}
	if !ru.Feasible || ru.Minutes != 5 {
		t.Errorf("under-cap result not passed through: %+v", ru)
	}
}

// TestAccessPruneFewerEstimationsSameBest is the ISSUE acceptance
// criterion: on S-W at seed 42, access-pattern pruning must cut fresh
// HLS estimations below the prior 79 while following a byte-identical
// trajectory to a byte-identical best design.
func TestAccessPruneFewerEstimationsSameBest(t *testing.T) {
	a, _ := swSetup(t)
	k, _ := a.Kernel()

	run := func(prune bool) *Outcome {
		sp := space.Identify(k)
		eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
		cfg := S2FAConfig(42)
		cfg.AccessPrune = prune
		return Run(k, sp, eval, cfg)
	}
	base, guarded := run(false), run(true)

	if base.AccessPruned != 0 {
		t.Errorf("unguarded run reported access pruning: %d", base.AccessPruned)
	}
	if guarded.AccessPruned == 0 {
		t.Error("guarded run pruned nothing; S-W proposes parallel factors above the L2 port cap")
	}
	if !reflect.DeepEqual(base.Best.Point, guarded.Best.Point) {
		t.Errorf("best point changed:\n  base    %v\n  guarded %v", base.Best.Point, guarded.Best.Point)
	}
	if base.Best.Objective != guarded.Best.Objective {
		t.Errorf("best objective changed: %v -> %v", base.Best.Objective, guarded.Best.Objective)
	}
	if !reflect.DeepEqual(base.Trajectory, guarded.Trajectory) {
		t.Errorf("trajectory changed:\n  base    %v\n  guarded %v", base.Trajectory, guarded.Trajectory)
	}
	if base.Evaluations != guarded.Evaluations {
		t.Errorf("evaluation count changed: %d -> %d", base.Evaluations, guarded.Evaluations)
	}
	baseHLS := base.Evaluations - base.StaticallyPruned - base.DependPruned - base.RangeCollapsed
	guardedHLS := guarded.Evaluations - guarded.StaticallyPruned - guarded.DependPruned -
		guarded.AccessPruned - guarded.RangeCollapsed
	if guardedHLS >= 79 {
		t.Errorf("fresh HLS estimations = %d, want < 79 (pre-access reference)", guardedHLS)
	}
	if guardedHLS >= baseHLS {
		t.Errorf("pruning saved no estimations: %d vs %d", guardedHLS, baseHLS)
	}
	t.Logf("S-W seed 42: fresh HLS estimations %d -> %d (access-pruned %d)",
		baseHLS, guardedHLS, guarded.AccessPruned)
}
