package dse

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"s2fa/internal/cir"
	"s2fa/internal/hls"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// The concurrent engine (Config.Engine == EngineParallel).
//
// The sequential engine is an inherently serial adaptive search: each
// proposal depends on every result absorbed before it. What is NOT
// serial is the expensive part — Merlin annotation plus HLS estimation
// is a pure function of the design point. The engine therefore splits
// the run in two:
//
//   - A merge goroutine replays the exact sequential schedule: earliest
//     virtual clock first, FCFS partitions, per-worker drivers and
//     stoppers, identical trace accounting. It is the only goroutine
//     that touches search state.
//   - An evaluation pool of Parallelism goroutines speculatively
//     computes pure evaluations into a shared sharded cache
//     (hls.Cache). The merge goroutine announces upcoming points
//     (training samples, seeds, pre-proposed batches) and later fetches
//     the results; if a result is not ready — or was never dispatched —
//     it computes inline, so the pool can only help, never change
//     anything.
//
// Pre-proposing is sound because a driver's proposals depend only on
// its own worker-local state (bandit, RNG, result DB), all of which is
// final by the time the previous batch has been committed; the merge
// loop proposes each worker's next batch immediately after absorbing
// its current one, then evaluations overlap across workers while the
// merge loop services whichever worker's clock is earliest.
//
// Freshness replay is what keeps Minutes accounting byte-identical: the
// sequential memo charges synthesis minutes on first evaluation of a
// key and zero after. The merge goroutine keeps its own replay-order
// `seen` set and assigns fresh-vs-cached Minutes from THAT order, so it
// does not matter which goroutine actually computed the value or when.
//
// Two observable differences remain, neither affecting the Outcome:
// trace events for pre-proposed bandit selections interleave earlier
// across tracks than in the sequential engine (per-track content is
// identical), and a worker cut off by MaxEvaluations may have proposed
// one batch it never evaluates (extra select events; bandit state dies
// with the run).

// poolSize resolves Config.Parallelism.
func (c Config) poolSize() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func runParallel(k *cir.Kernel, sp *space.Space, pure tuner.Evaluator, cfg Config) *Outcome {
	out := newOutcome(k)
	pool := newEvalPool(cfg.poolSize(), k.Name, pure)
	defer pool.close(cfg.Trace)
	eval := wrapEvaluator(k, sp, pool.replayEvaluator(cfg.Trace), cfg, out)
	var parts []Partition
	if cfg.Partition != nil {
		parts = buildPartitions(sp, k, eval, *cfg.Partition, cfg.Seed, pool.prefetch)
	} else {
		parts = []Partition{{Sub: sp}}
	}
	out.Partitions = parts

	ps := &parScheduler{cfg: cfg, pool: pool}
	ps.s = newSchedulerHooked(cfg, parts, eval, out, ps.prepare)
	ps.run()
	return finishOutcome(out, ps.s)
}

// parScheduler drives the merge goroutine: the sequential scheduler's
// loop and accounting, with evaluation batches pre-proposed and handed
// to the pool one iteration ahead.
type parScheduler struct {
	cfg  Config
	pool *evalPool
	s    *scheduler
}

// prepare pre-proposes w's next iteration and dispatches its points to
// the pool. Called right after a partition is assigned and after every
// absorbed batch, i.e. at exactly the driver state the sequential
// engine would propose from. Workers at the time limit propose nothing:
// the sequential engine checks the budget before stepping, and a
// proposal here would consume driver RNG state it never consumes.
func (ps *parScheduler) prepare(w *worker) {
	if w.done || w.hasPending || w.clock >= ps.cfg.TimeLimitMinutes {
		return
	}
	w.hasPending = true
	if len(w.seeds) > 0 {
		seedPt := w.seeds[0]
		w.seeds = w.seeds[1:]
		w.pendingSeed = &seedPt
		ps.pool.prefetchPart(seedPt, w.part)
		return
	}
	w.pendingProps = w.driver.Propose(ps.cfg.BatchPerIter)
	for _, p := range w.pendingProps {
		ps.pool.prefetchPart(p.Point, w.part)
	}
}

// run is the sequential scheduler loop verbatim, stepping through the
// pre-proposed batches.
func (ps *parScheduler) run() {
	s := ps.s
	for {
		w := s.earliest()
		if w == nil {
			return
		}
		if s.evals >= s.cfg.MaxEvaluations {
			s.hitMaxEvals = true
			for _, w := range s.workers {
				s.endPartitionSpan(w, "max-evaluations")
			}
			return
		}
		ps.step(w)
	}
}

// step mirrors scheduler.step exactly, except that the seed or batch to
// evaluate was proposed ahead of time by prepare. Evaluations go through
// the same wrapped chain (prune -> collapse -> replay memo), so every
// Minutes charge, cache hit, and counter lands as in the sequential
// engine.
func (ps *parScheduler) step(w *worker) {
	s := ps.s
	if w.clock >= s.cfg.TimeLimitMinutes {
		s.sawTimeout = true
		s.endPartitionSpan(w, "timeout")
		w.done = true
		w.part = -1
		return
	}
	if !w.hasPending {
		ps.prepare(w)
	}
	var results []tuner.Result
	var iterMinutes float64
	if w.pendingSeed != nil {
		seedPt := *w.pendingSeed
		w.pendingSeed = nil
		w.hasPending = false
		r := w.driver.InjectSeed(seedPt)
		results = []tuner.Result{r}
		iterMinutes = r.Minutes
	} else {
		props := w.pendingProps
		w.pendingProps = nil
		w.hasPending = false
		if len(props) == 0 {
			// Partition exhausted (tiny sub-space).
			s.finishPartition(w, "exhausted")
			return
		}
		results = make([]tuner.Result, 0, len(props))
		for _, p := range props {
			r, _ := w.driver.Commit(p, s.eval(p.Point))
			results = append(results, r)
			if r.Minutes > iterMinutes {
				iterMinutes = r.Minutes
			}
		}
	}
	s.absorb(w, results, iterMinutes)
	if !w.done {
		// Same partition, next iteration (a partition hand-off already
		// prepared via the assign hook).
		ps.prepare(w)
	}
}

// poolJob is one speculative evaluation request. part is the partition
// index the proposing worker held (-1 when unknown, e.g. training
// samples dispatched before assignment), carried only as a pprof label.
type poolJob struct {
	pt   space.Point
	part int
	enq  time.Time
}

// evalPool runs pure evaluations on real goroutines, memoized in a
// sharded cache the merge goroutine reads results from.
type evalPool struct {
	pure   tuner.Evaluator
	kernel string // pprof label value attributing samples to the app
	cache  *hls.Cache[tuner.Result]

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []poolJob
	closed bool
	wg     sync.WaitGroup

	started    time.Time
	dispatched atomic.Int64
	queueWait  atomic.Int64 // ns jobs spent queued before a pool worker picked them up
	busyNS     []int64      // per pool worker; written only by that worker, read after wg.Wait

	// Merge-goroutine-only replay accounting.
	freshReplays int
	mergeStallNS int64
}

func newEvalPool(workers int, kernel string, pure tuner.Evaluator) *evalPool {
	if workers < 1 {
		workers = 1
	}
	p := &evalPool{
		pure:   pure,
		kernel: kernel,
		cache:  hls.NewCache[tuner.Result](hls.DefaultCacheShards),
		busyNS: make([]int64, workers),
		//determinism:allow telemetry-only: pool wall time never reaches results (replay is deterministic)
		started: time.Now(),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		// pprof labels attribute CPU samples to search structure: which
		// pool worker and which app the sample belongs to. Labels are
		// profiler metadata only — they never touch evaluation results,
		// so the cross-engine determinism property holds with profiling
		// on (covered by core.TestTracingDeterminism).
		go pprof.Do(context.Background(),
			pprof.Labels("s2fa_pool_worker", strconv.Itoa(i), "s2fa_kernel", kernel),
			func(ctx context.Context) { p.worker(ctx, i) })
	}
	return p
}

// prefetch queues pt for speculative evaluation with no partition
// attribution (training samples, partition probes).
func (p *evalPool) prefetch(pt space.Point) { p.prefetchPart(pt, -1) }

// prefetchPart queues pt for speculative evaluation. Never blocks: the
// queue is unbounded so the merge goroutine can always run ahead.
func (p *evalPool) prefetchPart(pt space.Point, part int) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	//determinism:allow telemetry-only: queue-wait timing never reaches results
	p.queue = append(p.queue, poolJob{pt: pt, part: part, enq: time.Now()})
	p.mu.Unlock()
	p.cond.Signal()
	p.dispatched.Add(1)
}

func (p *evalPool) worker(ctx context.Context, i int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		j := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		p.queueWait.Add(time.Since(j.enq).Nanoseconds())
		t0 := time.Now() //determinism:allow telemetry-only: worker busy time never reaches results
		// GetOrCompute dedups against other pool workers and against the
		// merge goroutine computing the same key inline.
		compute := func(context.Context) {
			p.cache.GetOrCompute(j.pt.Key(), func() tuner.Result { return p.pure(j.pt) })
		}
		if j.part >= 0 {
			pprof.Do(ctx, pprof.Labels("s2fa_partition", strconv.Itoa(j.part)), compute)
		} else {
			compute(ctx)
		}
		p.busyNS[i] += time.Since(t0).Nanoseconds()
	}
}

// replayEvaluator is the base of the merge goroutine's evaluator chain:
// it reproduces the sequential memoizing evaluator (NewTracedEvaluator)
// exactly — first evaluation of a key in REPLAY order charges the fresh
// synthesis minutes, repeats cost zero — while sourcing values from the
// shared cache, computing inline whenever the pool has not finished (or
// never saw) the key. Must only be called from the merge goroutine.
func (p *evalPool) replayEvaluator(tr *obs.Trace) tuner.Evaluator {
	seen := map[string]bool{}
	return func(pt space.Point) tuner.Result {
		key := pt.Key()
		if seen[key] {
			r, ok := p.cache.Peek(key)
			if !ok {
				// Unreachable (the first replay of key completed the
				// entry), kept as a safety net.
				r, _ = p.cache.GetOrCompute(key, func() tuner.Result { return p.pure(pt) })
			}
			r.Point = pt
			r.Minutes = 0 // cached HLS report, no synthesis re-run
			if tr != nil {
				hit := tr.Begin("hls", "estimate",
					obs.Str("point", key), obs.Str("cache", "hit"))
				hit.End(obs.F64("synth_min", 0), obs.Bool("feasible", r.Feasible))
				tr.Count("hls.cache_hits", 1)
			}
			return r
		}
		seen[key] = true
		p.freshReplays++
		var span *obs.Span
		if tr != nil {
			span = tr.Begin("hls", "estimate",
				obs.Str("point", key), obs.Str("cache", "fresh"))
			tr.Count("hls.estimations", 1)
		}
		t0 := time.Now() //determinism:allow telemetry-only: merge-stall timing never reaches results
		r, _ := p.cache.GetOrCompute(key, func() tuner.Result { return p.pure(pt) })
		p.mergeStallNS += time.Since(t0).Nanoseconds()
		// Merlin-rejected points carry a nil Meta (estimated results
		// always carry their hls.Report).
		span.End(estimateEndKVs(r, r.Meta == nil && !r.Feasible)...)
		tr.Observe("hls_synth_minutes", r.Minutes)
		r.Point = pt
		return r
	}
}

// close stops the pool, abandoning still-queued speculative jobs, and
// emits the engine's contention/utilization counters to tr.
func (p *evalPool) close(tr *obs.Trace) {
	p.mu.Lock()
	p.closed = true
	abandoned := len(p.queue)
	p.queue = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	if tr == nil {
		return
	}
	elapsed := time.Since(p.started).Nanoseconds()
	st := p.cache.Stats()
	tr.Count("dse.par.dispatched", p.dispatched.Load())
	tr.Count("dse.par.abandoned", int64(abandoned))
	tr.Count("dse.par.cache.hits", st.Hits)
	tr.Count("dse.par.cache.misses", st.Misses)
	tr.Count("dse.par.cache.contended", st.Contended)
	// Keys computed but never replayed: pruned, collapsed, or abandoned
	// proposals. This is the price of speculation, in estimations.
	tr.Count("dse.par.speculative_waste", st.Misses-int64(p.freshReplays))
	tr.Count("dse.par.queue_wait_us", p.queueWait.Load()/1000)
	tr.Count("dse.par.merge_stall_us", p.mergeStallNS/1000)
	for i, ns := range p.busyNS {
		tr.Count(fmt.Sprintf("dse.par.worker%d.busy_us", i), ns/1000)
		if elapsed > 0 {
			tr.Gauge(fmt.Sprintf("dse.par.worker%d.utilization", i),
				float64(ns)/float64(elapsed))
		}
	}
}
