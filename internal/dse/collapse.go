package dse

import (
	"sync"

	"s2fa/internal/cir"
	"s2fa/internal/fpga"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// rangeCollapseEvaluator wraps an evaluator with value-range-driven
// width-equivalence caching. Two design points that differ only in
// interface bit-widths the HLS model provably cannot distinguish map to
// one canonical key: the first evaluation synthesizes, every later
// equivalent point is served its bit-identical report without touching
// the estimator. Because the served result (objective, feasibility,
// synthesis minutes, HLS report) is exactly what the inner evaluator
// would have produced, the search trajectory is preserved by
// construction — only the number of real HLS estimations drops. counter
// tallies first-time points served from an equivalent design's report.
//
// Equivalence is gated on buffers whose value range the abstract
// interpreter proved (cir.Param.ValKnown): the proof certifies the
// traffic model behind the width conditions below.
func rangeCollapseEvaluator(k *cir.Kernel, sp *space.Space, dev *fpga.Device, inner tuner.Evaluator, counter *int, tr *obs.Trace) tuner.Evaluator {
	eq := newWidthEquiv(k, sp, dev)
	// The mutex covers cache/seen/counter so the wrapper stays safe if
	// callers ever share it across goroutines (the width-equivalence
	// table itself is read-only after construction). The engines only
	// call it from the scheduling goroutine, so it is uncontended there.
	var mu sync.Mutex
	cache := map[string]tuner.Result{}
	seen := map[string]bool{}
	return func(pt space.Point) tuner.Result {
		key := eq.canonicalKey(pt)
		ptKey := pt.Key()
		mu.Lock()
		if r, ok := cache[key]; ok {
			r.Point = pt
			if seen[ptKey] {
				// Exact repeat: a memoized HLS report costs no synthesis
				// re-run, mirroring the inner evaluator's cache.
				r.Minutes = 0
			} else {
				seen[ptKey] = true
				*counter++
				if tr != nil {
					tr.Event("dse", "collapse",
						obs.Str("point", ptKey), obs.Str("canonical", key))
					tr.Count("dse.collapsed", 1)
				}
			}
			mu.Unlock()
			return r
		}
		seen[ptKey] = true
		mu.Unlock()
		r := inner(pt)
		mu.Lock()
		cache[key] = r
		mu.Unlock()
		return r
	}
}

// widthEquiv holds the precomputed model quantities behind the width
// equivalence rule. Width appears in exactly three places in the HLS
// model: per-buffer BRAM/LUT lanes (area), the memory initiation
// interval of pipelined task loops, and the aggregate burst throughput
// of unpipelined ones. Two widths are equivalent for a point when all
// three sites provably compute the same value.
type widthEquiv struct {
	k  *cir.Kernel
	sp *space.Space
	// cap is the DDR channel bytes/cycle; floor the aggregate streaming
	// floor in cycles at unit task parallelism (the parallel factor
	// scales payload and floor alike and cancels).
	cap, floor float64
	tileName   string
	pipeName   string
	widthIdx   []int // FactorBitWidth indices into sp.Params
	bytesOf    map[string]float64
	reduceOut  map[string]bool
}

func newWidthEquiv(k *cir.Kernel, sp *space.Space, dev *fpga.Device) *widthEquiv {
	e := &widthEquiv{
		k: k, sp: sp,
		cap:       float64(dev.DDRBytesPerCycle),
		tileName:  k.TaskLoopID + ".tile",
		pipeName:  k.TaskLoopID + ".pipeline",
		bytesOf:   map[string]float64{},
		reduceOut: map[string]bool{},
	}
	for _, p := range k.Params {
		if !p.IsArray {
			continue
		}
		b := float64(p.Length) * float64(p.Elem.Bits()) / 8
		e.bytesOf[p.Name] = b
		if p.IsOutput && k.Pattern == cir.PatternReduce {
			e.reduceOut[p.Name] = true
			continue
		}
		e.floor += b
	}
	if e.cap > 0 {
		e.floor /= e.cap
	}
	for i := range sp.Params {
		if sp.Params[i].Kind == space.FactorBitWidth {
			e.widthIdx = append(e.widthIdx, i)
		}
	}
	return e
}

// canonicalKey maps pt to the key of its width-canonical sibling: each
// proven-range buffer's width is lowered to the smallest domain value the
// model cannot distinguish from it. Points outside the rule's scope (task
// loop tiled, no width factors) keep their own key.
func (e *widthEquiv) canonicalKey(pt space.Point) string {
	if len(e.widthIdx) == 0 || e.cap <= 0 || pt[e.tileName] > 1 {
		return pt.Key()
	}
	pipe := pt[e.pipeName]
	var canon space.Point
	for _, i := range e.widthIdx {
		wp := &e.sp.Params[i]
		w, ok := pt[wp.Name]
		if !ok {
			continue
		}
		buf := e.k.Param(wp.Buffer)
		if buf == nil || !buf.ValKnown {
			continue
		}
		for ord := 0; ord < wp.Size(); ord++ {
			cand := wp.ValueAt(ord)
			if cand >= w {
				break
			}
			if lanesOf(cand) != lanesOf(w) {
				continue // different BRAM/LUT lanes: area differs
			}
			if !e.sameInterface(pt, wp.Buffer, cand, w, pipe) {
				continue
			}
			if canon == nil {
				canon = pt.Clone()
			}
			canon[wp.Name] = cand
			break
		}
	}
	if canon == nil {
		return pt.Key()
	}
	return canon.Key()
}

// sameInterface reports whether widths w1 and w2 on buffer buf yield the
// same interface timing for a point whose task loop carries the given
// pipeline mode. Pipelined (and flattened) task loops are bounded by the
// memory initiation interval: once streaming the buffer's payload fits
// under the aggregate DDR floor at both widths, the channel — not the
// port — sets the II. Unpipelined task loops pay blocking bursts at the
// aggregate interface throughput, which the DDR channel caps: if the
// aggregate saturates the cap at both widths the burst time is equal.
func (e *widthEquiv) sameInterface(pt space.Point, buf string, w1, w2, pipe int) bool {
	if pipe == space.PipeOffVal {
		others := 0.0
		for _, i := range e.widthIdx {
			wp := &e.sp.Params[i]
			if wp.Buffer == buf {
				continue
			}
			others += float64(pt[wp.Name]) / 8
		}
		return others+float64(w1)/8 >= e.cap && others+float64(w2)/8 >= e.cap
	}
	if e.reduceOut[buf] {
		// Task-invariant accumulators are excluded from per-task
		// streaming; their port width never reaches the II.
		return true
	}
	b := e.bytesOf[buf]
	return b*8/float64(w1) <= e.floor && b*8/float64(w2) <= e.floor
}

// lanesOf mirrors the HLS area model's BRAM/LUT lane count for an
// interface width.
func lanesOf(w int) int {
	if l := w / 72; l > 1 {
		return l
	}
	return 1
}
