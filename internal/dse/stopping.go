package dse

import (
	"math"
	"sort"

	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// Stopper decides when a partition's exploration terminates. Observe is
// called after every evaluation with the result and whether it set a new
// partition-local best; it returns true to stop.
type Stopper interface {
	Observe(r tuner.Result, newBest bool) bool
	Clone() Stopper // fresh state for a new partition
}

// EntropyStopper implements the Shannon-entropy early-stopping criterion
// of paper §4.3.3: it tracks the experimental conditional probability that
// mutating each design factor t_j produces an uphill (improved) result
// between consecutive iterations, computes the Shannon entropy H(D_i) of
// that distribution, and stops once |H(D_i) - H(D_{i-1})| <= theta for N
// consecutive iterations — i.e. once the uncertainty about where further
// improvement might come from has stabilized.
type EntropyStopper struct {
	// Theta is the entropy-difference threshold.
	Theta float64
	// Consecutive is the number of below-threshold iterations required
	// (the paper's pulse suppression).
	Consecutive int
	// MinIterations guards against stopping before the estimate means
	// anything.
	MinIterations int

	attempts     map[string]float64
	uphill       map[string]float64
	prevObj      float64
	prevPt       space.Point
	prevH        float64
	hValid       bool
	streak       int
	iters        int
	bestObj      float64
	sinceImprove int
}

// NewEntropyStopper returns the criterion with the framework defaults.
func NewEntropyStopper() *EntropyStopper {
	return &EntropyStopper{Theta: 0.04, Consecutive: 4, MinIterations: 12}
}

// Clone implements Stopper.
func (e *EntropyStopper) Clone() Stopper {
	return &EntropyStopper{Theta: e.Theta, Consecutive: e.Consecutive, MinIterations: e.MinIterations}
}

// Observe implements Stopper.
func (e *EntropyStopper) Observe(r tuner.Result, newBest bool) bool {
	if e.attempts == nil {
		// Register every design factor up front so the entropy estimate
		// moves smoothly as evidence accumulates rather than jumping when
		// a factor is first touched (the paper's pulse suppression). The
		// minimum iteration count scales with the number of factors: the
		// conditional probabilities need at least ~one observation per
		// factor before H(D_i) is meaningful.
		e.attempts = map[string]float64{}
		e.uphill = map[string]float64{}
		//determinism:allow order-independent: zero-inits one entry per key
		for name := range r.Point {
			e.attempts[name] = 0
		}
		dynMin := 2 * len(r.Point)
		if dynMin > 64 {
			dynMin = 64
		}
		if dynMin > e.MinIterations {
			e.MinIterations = dynMin
		}
	}
	e.iters++
	if e.prevPt != nil {
		// An "uphill" result must improve meaningfully (>1%): endless
		// sub-percent factor tweaks should not keep the criterion alive.
		improved := r.Feasible && (math.IsInf(e.prevObj, 1) || r.Objective < e.prevObj*0.99)
		//determinism:allow order-independent: commutative counter increments on distinct keys
		for name, v := range r.Point {
			if e.prevPt[name] != v {
				e.attempts[name]++
				if improved {
					e.uphill[name]++
				}
			}
		}
	}
	e.prevPt = r.Point
	e.prevObj = r.Objective

	// Track meaningful improvement of the partition incumbent: the
	// entropy criterion must not fire while the search is still visibly
	// descending (that would be a premature pulse, not convergence).
	if r.Feasible && (e.bestObj == 0 || r.Objective < e.bestObj*0.99) {
		e.bestObj = r.Objective
		e.sinceImprove = 0
	} else {
		e.sinceImprove++
	}

	h := e.entropy()
	stop := false
	if e.hValid {
		if math.Abs(h-e.prevH) <= e.Theta {
			e.streak++
		} else {
			e.streak = 0
		}
		stop = e.iters >= e.MinIterations && e.streak >= e.Consecutive && e.sinceImprove >= 10
	}
	e.prevH = h
	e.hValid = true
	return stop
}

// entropy computes H(D_i) = -sum_j p_j log p_j over the normalized
// conditional uphill probabilities, with Laplace smoothing so untried
// factors keep residual uncertainty. Factors are visited in sorted name
// order: float summation is order-sensitive, and Go map iteration order
// varies per run, so a fixed order is what makes H(D_i) — and therefore
// the stop decision — reproducible across runs and engines.
func (e *EntropyStopper) entropy() float64 {
	const eps = 0.05
	names := make([]string, 0, len(e.attempts))
	//determinism:allow collect-then-sort: keys are ordered before any float math
	for name := range e.attempts {
		names = append(names, name)
	}
	sort.Strings(names)
	var ps []float64
	var sum float64
	for _, name := range names {
		p := (e.uphill[name] + eps) / (e.attempts[name] + 2*eps)
		ps = append(ps, p)
		sum += p
	}
	if sum == 0 {
		return 0
	}
	var h float64
	for _, p := range ps {
		q := p / sum
		if q > 0 {
			h -= q * math.Log2(q)
		}
	}
	return h
}

// TrivialStopper is the straightforward baseline criterion the paper
// compares against: stop after Patience consecutive iterations without a
// new best result. The evaluation found it terminates about an hour later
// than the entropy criterion for only ~4% average QoR gain (§5.2).
type TrivialStopper struct {
	Patience int
	// MinIterations applies the same minimum exploration floor as the
	// entropy criterion so the two are compared on the criterion itself.
	MinIterations int
	misses        int
	bestSeen      float64
	iters         int
}

// NewTrivialStopper returns the criterion with the paper's setting of 10
// iterations.
func NewTrivialStopper() *TrivialStopper { return &TrivialStopper{Patience: 10, MinIterations: 12} }

// Clone implements Stopper.
func (t *TrivialStopper) Clone() Stopper {
	return &TrivialStopper{Patience: t.Patience, MinIterations: t.MinIterations}
}

// Observe implements Stopper. Any new best — however marginal — resets
// the patience counter, which is precisely the long-tail weakness the
// paper attributes to this criterion: trickles of sub-percent
// improvements keep the search alive for hours.
func (t *TrivialStopper) Observe(r tuner.Result, newBest bool) bool {
	if t.iters == 0 {
		dynMin := 2 * len(r.Point)
		if dynMin > 64 {
			dynMin = 64
		}
		if dynMin > t.MinIterations {
			t.MinIterations = dynMin
		}
	}
	t.iters++
	if newBest && r.Feasible && (t.bestSeen == 0 || r.Objective < t.bestSeen) {
		t.bestSeen = r.Objective
		t.misses = 0
		return false
	}
	t.misses++
	return t.iters >= t.MinIterations && t.misses >= t.Patience
}

// NeverStopper relies purely on the outer time limit, like vanilla
// OpenTuner ("does not have a systematic stopping criteria but only
// adopts the limitation of either execution time or searched point
// count").
type NeverStopper struct{}

// Clone implements Stopper.
func (NeverStopper) Clone() Stopper { return NeverStopper{} }

// Observe implements Stopper.
func (NeverStopper) Observe(tuner.Result, bool) bool { return false }
