package dse

import (
	"math"
	"math/rand"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

func kmeansSetup(t *testing.T) (*space.Space, tuner.Evaluator) {
	t.Helper()
	a := apps.Get("KMeans")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	sp := space.Identify(k)
	return sp, NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
}

// TestPartitionsDisjointAndCovering samples random points and checks each
// falls in exactly one partition — the property the paper uses to argue
// partitioning preserves optimality (§4.3.1).
func TestPartitionsDisjointAndCovering(t *testing.T) {
	a := apps.Get("S-W")
	k, _ := a.Kernel()
	sp := space.Identify(k)
	eval := NewEvaluator(k, sp, fpga.VU9P(), 1024, hls.Options{})
	parts := BuildPartitions(sp, k, eval, DefaultPartitionConfig(), 3)
	if len(parts) < 3 {
		t.Fatalf("only %d partitions", len(parts))
	}
	contains := func(p Partition, pt space.Point) bool {
		for i := range p.Sub.Params {
			prm := &p.Sub.Params[i]
			if !prm.Contains(pt[prm.Name]) {
				return false
			}
		}
		return true
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		pt := sp.RandomPoint(rng)
		n := 0
		for _, p := range parts {
			if contains(p, pt) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("point in %d partitions (must be exactly 1): %v", n, pt)
		}
	}
}

// TestPartitionsSplitOnTaskSchedule asserts the mandatory RDD-semantics
// rule: partitions separate the task loop's pipeline modes.
func TestPartitionsSplitOnTaskSchedule(t *testing.T) {
	sp, eval := kmeansSetup(t)
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	parts := BuildPartitions(sp, k, eval, DefaultPartitionConfig(), 1)
	modes := map[int]bool{}
	for _, p := range parts {
		prm := p.Sub.Param(k.TaskLoopID + ".pipeline")
		if prm.Size() != 1 {
			t.Fatalf("partition %q does not pin the task pipeline mode", p.String())
		}
		modes[prm.ValueAt(0)] = true
	}
	if len(modes) != 3 {
		t.Errorf("task pipeline modes covered = %v, want all 3", modes)
	}
}

func TestEntropyStopperConverges(t *testing.T) {
	es := NewEntropyStopper()
	st := es.Clone().(*EntropyStopper)
	pt := space.Point{"a": 1, "b": 2, "c": 3}
	stopped := false
	for i := 0; i < 200; i++ {
		// No improvements: a dead partition must eventually stop.
		mut := pt.Clone()
		mut["a"] = i % 5
		if st.Observe(tuner.Result{Point: mut, Objective: 100, Feasible: true}, false) {
			stopped = true
			break
		}
	}
	if !stopped {
		t.Error("entropy criterion never fired on a stagnant partition")
	}
}

func TestEntropyStopperStaysAliveWhileImproving(t *testing.T) {
	st := NewEntropyStopper().Clone().(*EntropyStopper)
	pt := space.Point{"a": 1, "b": 2}
	obj := 1000.0
	for i := 0; i < 60; i++ {
		obj *= 0.9 // strong steady improvement
		mut := pt.Clone()
		mut["a"] = i
		if st.Observe(tuner.Result{Point: mut, Objective: obj, Feasible: true}, true) {
			t.Fatalf("stopped at iteration %d despite steady improvement", i)
		}
	}
}

func TestTrivialStopper(t *testing.T) {
	ts := NewTrivialStopper().Clone().(*TrivialStopper)
	pt := space.Point{"a": 1}
	// Improvements keep it alive.
	obj := 100.0
	for i := 0; i < 30; i++ {
		obj -= 1
		if ts.Observe(tuner.Result{Point: pt, Objective: obj, Feasible: true}, true) {
			t.Fatalf("stopped during improvements at %d", i)
		}
	}
	// Then 10 misses kill it (after the exploration floor).
	stopped := false
	for i := 0; i < 40; i++ {
		if ts.Observe(tuner.Result{Point: pt, Objective: 999, Feasible: true}, false) {
			stopped = true
			break
		}
	}
	if !stopped {
		t.Error("trivial criterion never fired")
	}
}

func TestNeverStopper(t *testing.T) {
	ns := NeverStopper{}
	for i := 0; i < 100; i++ {
		if ns.Observe(tuner.Result{}, false) {
			t.Fatal("NeverStopper stopped")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	sp, _ := kmeansSetup(t)
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	run := func() *Outcome {
		eval := NewEvaluator(k, sp, fpga.VU9P(), int64(a.Tasks), hls.Options{})
		return Run(k, sp, eval, S2FAConfig(42))
	}
	o1, o2 := run(), run()
	if o1.Best.Objective != o2.Best.Objective ||
		o1.Evaluations != o2.Evaluations ||
		math.Abs(o1.TotalMinutes-o2.TotalMinutes) > 1e-9 {
		t.Errorf("same seed produced different outcomes: %s vs %s", o1.Summary(), o2.Summary())
	}
}

func TestRunRespectsTimeLimit(t *testing.T) {
	sp, eval := kmeansSetup(t)
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	cfg := VanillaConfig(5)
	cfg.TimeLimitMinutes = 60
	out := Run(k, sp, eval, cfg)
	if out.TotalMinutes > 60 {
		t.Errorf("run overshot the limit: %.1f min", out.TotalMinutes)
	}
}

func TestTrajectoryMonotone(t *testing.T) {
	sp, eval := kmeansSetup(t)
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	out := Run(k, sp, eval, S2FAConfig(8))
	prevT, prevObj := -1.0, math.Inf(1)
	for _, tp := range out.Trajectory {
		if tp.Minutes < prevT {
			t.Errorf("trajectory time went backwards: %v after %v", tp.Minutes, prevT)
		}
		if tp.Objective >= prevObj {
			t.Errorf("trajectory objective did not improve: %v after %v", tp.Objective, prevObj)
		}
		prevT, prevObj = tp.Minutes, tp.Objective
	}
	if out.BestAt(out.TotalMinutes+1) != out.Best.Objective {
		t.Error("BestAt(end) != Best")
	}
	if !math.IsInf(out.BestAt(-1), 1) {
		t.Error("BestAt before start should be +Inf")
	}
}

func TestEvaluatorCachesSynthesis(t *testing.T) {
	sp, eval := kmeansSetup(t)
	pt := sp.AreaSeed()
	r1 := eval(pt)
	r2 := eval(pt)
	if r1.Minutes <= 0 {
		t.Error("first evaluation charged no synthesis time")
	}
	if r2.Minutes != 0 {
		t.Errorf("cached evaluation charged %v minutes", r2.Minutes)
	}
	if r1.Objective != r2.Objective {
		t.Error("cache changed the objective")
	}
}

func TestEvaluatorPenaltyGradient(t *testing.T) {
	a := apps.Get("S-W")
	k, _ := a.Kernel()
	sp := space.Identify(k)
	eval := NewEvaluator(k, sp, fpga.VU9P(), 1024, hls.Options{})
	mild := sp.AreaSeed()
	mild["L0.parallel"] = 128 // somewhat over budget
	wild := sp.AreaSeed()
	wild["L0.parallel"] = 256
	wild["L1.parallel"] = 64
	wild["L2.parallel"] = 64
	rm, rw := eval(mild), eval(wild)
	if rm.Feasible || rw.Feasible {
		t.Skip("expected both infeasible under current model")
	}
	if !(rm.Objective < rw.Objective) {
		t.Errorf("no gradient: mild=%v wild=%v", rm.Objective, rw.Objective)
	}
	// Flat wrapper erases the gradient.
	flat := FlatInfeasible(eval)
	if flat(mild).Objective != flat(wild).Objective {
		t.Error("FlatInfeasible kept a gradient")
	}
}

func TestNoFeasibleOutcome(t *testing.T) {
	sp, _ := kmeansSetup(t)
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	eval := func(pt space.Point) tuner.Result {
		return tuner.Result{Point: pt, Objective: 1e8, Feasible: false, Minutes: 5}
	}
	cfg := VanillaConfig(1)
	cfg.TimeLimitMinutes = 30
	out := Run(k, sp, eval, cfg)
	if out.Best.Feasible || !math.IsInf(out.Best.Objective, 1) {
		t.Errorf("outcome with no feasible point: %+v", out.Best)
	}
}
