package dse

import (
	"math"
	"testing"

	"s2fa/internal/tuner"
)

// Table-driven edge cases for the stopping criteria: histories shorter
// than the entropy window, degenerate all-identical objective streams,
// and NaN/Inf objectives (the infeasible penalty is 1e8 and a rejected
// evaluation can surface non-finite values; the criterion must neither
// panic nor poison H(D_i)).
func TestStopperEdgeCases(t *testing.T) {
	const factors = 3
	cases := []struct {
		name    string
		stopper func() Stopper
		result  func(i int) tuner.Result
		iters   int
		// wantStop: whether the stopper must have fired within iters.
		wantStop bool
		// minStopIter: earliest legal firing iteration (1-based; 0 = any).
		minStopIter int
	}{
		{
			// Fewer observations than the entropy streak window can ever
			// need: Consecutive=4 below-threshold diffs require 5 entropy
			// values, so a 4-point history must never fire, however stable.
			name:    "history-shorter-than-window",
			stopper: func() Stopper { return NewEntropyStopper() },
			result: func(i int) tuner.Result {
				return tuner.Result{Point: widePoint(factors, 0), Objective: 100, Feasible: true}
			},
			iters:       4,
			wantStop:    false,
			minStopIter: 0,
		},
		{
			// All-identical objectives with mutating factors: entropy
			// stabilizes, no improvement ever happens — the criterion must
			// fire, but never before the MinIterations floor.
			name:    "all-identical-objectives",
			stopper: func() Stopper { return NewEntropyStopper() },
			result: func(i int) tuner.Result {
				return tuner.Result{Point: widePoint(factors, i), Objective: 100, Feasible: true}
			},
			iters:       100,
			wantStop:    true,
			minStopIter: 12,
		},
		{
			// Identical points AND objectives (a fully converged stream):
			// attempts never accumulate, entropy is constant from the start.
			name:    "all-identical-points",
			stopper: func() Stopper { return NewEntropyStopper() },
			result: func(i int) tuner.Result {
				return tuner.Result{Point: widePoint(factors, 0), Objective: 100, Feasible: true}
			},
			iters:       100,
			wantStop:    true,
			minStopIter: 12,
		},
		{
			// NaN objectives must not panic or keep the search alive
			// forever: NaN compares false everywhere, so it is "no
			// improvement" and the criterion converges on stability alone.
			name:    "nan-objectives",
			stopper: func() Stopper { return NewEntropyStopper() },
			result: func(i int) tuner.Result {
				return tuner.Result{Point: widePoint(factors, i), Objective: math.NaN(), Feasible: false}
			},
			iters:       100,
			wantStop:    true,
			minStopIter: 12,
		},
		{
			// +Inf objectives (unbounded penalty): same contract as NaN.
			name:    "inf-objectives",
			stopper: func() Stopper { return NewEntropyStopper() },
			result: func(i int) tuner.Result {
				return tuner.Result{Point: widePoint(factors, i), Objective: math.Inf(1), Feasible: false}
			},
			iters:       100,
			wantStop:    true,
			minStopIter: 12,
		},
		{
			// Steady meaningful descent (>1% per step): the criterion must
			// NOT fire while the search is still visibly improving.
			name:    "steady-descent-stays-alive",
			stopper: func() Stopper { return NewEntropyStopper() },
			result: func(i int) tuner.Result {
				return tuner.Result{Point: widePoint(factors, i), Objective: 100 * math.Pow(0.95, float64(i)), Feasible: true}
			},
			iters:    40,
			wantStop: false,
		},
		{
			// TrivialStopper with NaN objectives: NaN never registers as a
			// new best, so patience runs out at the floor.
			name:    "trivial-nan-objectives",
			stopper: func() Stopper { return NewTrivialStopper() },
			result: func(i int) tuner.Result {
				return tuner.Result{Point: widePoint(factors, i), Objective: math.NaN(), Feasible: false}
			},
			iters:       100,
			wantStop:    true,
			minStopIter: 12,
		},
		{
			// TrivialStopper patience window longer than the history: 9
			// misses against Patience=10 must not fire.
			name: "trivial-history-shorter-than-patience",
			stopper: func() Stopper {
				return &TrivialStopper{Patience: 10, MinIterations: 1}
			},
			result: func(i int) tuner.Result {
				return tuner.Result{Point: widePoint(factors, i), Objective: 100, Feasible: true}
			},
			iters:    9,
			wantStop: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.stopper().Clone() // exercised the way the scheduler uses it
			stoppedAt := -1
			for i := 0; i < tc.iters; i++ {
				if st.Observe(tc.result(i), false) {
					stoppedAt = i + 1
					break
				}
			}
			if tc.wantStop && stoppedAt < 0 {
				t.Fatalf("never fired within %d iterations", tc.iters)
			}
			if !tc.wantStop && stoppedAt >= 0 {
				t.Fatalf("fired at iteration %d, want never", stoppedAt)
			}
			if tc.minStopIter > 0 && stoppedAt >= 0 && stoppedAt < tc.minStopIter {
				t.Fatalf("fired at iteration %d, before the floor %d", stoppedAt, tc.minStopIter)
			}
			if es, ok := st.(*EntropyStopper); ok && es.hValid {
				if math.IsNaN(es.prevH) || math.IsInf(es.prevH, 0) {
					t.Fatalf("entropy became non-finite: %v", es.prevH)
				}
			}
		})
	}
}

// TestEntropyStopperEntropyFiniteUnderDegenerateCounts drives entropy()
// directly through the degenerate count states (no attempts at all,
// one dominant factor) and requires a finite value every time.
func TestEntropyStopperEntropyFiniteUnderDegenerateCounts(t *testing.T) {
	e := NewEntropyStopper()
	e.attempts = map[string]float64{}
	e.uphill = map[string]float64{}
	if h := e.entropy(); h != 0 {
		t.Fatalf("entropy of empty factor set = %v, want 0", h)
	}
	e.attempts = map[string]float64{"a": 0, "b": 0, "c": 0}
	if h := e.entropy(); math.IsNaN(h) || math.IsInf(h, 0) {
		t.Fatalf("entropy with zero attempts non-finite: %v", h)
	}
	e.attempts = map[string]float64{"a": 1000, "b": 0, "c": 0}
	e.uphill = map[string]float64{"a": 1000}
	if h := e.entropy(); math.IsNaN(h) || math.IsInf(h, 0) || h < 0 {
		t.Fatalf("entropy with dominant factor invalid: %v", h)
	}
}
