// Package merlin reproduces the Merlin compiler transformation library that
// S2FA uses to turn design-space directives into restructured HLS C (paper
// §3.2, §4.1): loop tiling, coarse-/fine-grained parallelism (unrolling
// with automatic tree reduction for reduction loops), loop pipelining
// (on/off/flatten, where flatten fully unrolls all sub-loops), and
// off-chip buffer bit-width selection.
//
// Each transformation exists in two forms:
//
//   - Annotate: attaches the directive to the IR (cir.LoopOpt / Param
//     .BitWidth). The HLS estimator interprets annotations analytically,
//     exactly like a pragma-driven flow. This is what the DSE uses, since
//     it evaluates thousands of design points.
//   - Materialize: structurally rewrites the AST (real tiling, real
//     unrolling with remainder guards, real flattening, real tree
//     reduction). Materialized kernels execute on the cir evaluator, which
//     is how the test suite proves every transformation is
//     semantics-preserving.
package merlin

import (
	"fmt"
	"sort"

	"s2fa/internal/cir"
)

// Directives is a complete transformation request for one kernel: per-loop
// options keyed by loop ID plus per-buffer interface bit-widths keyed by
// parameter name. It is the bridge between a design point (internal/space)
// and the transformation library.
type Directives struct {
	Loops     map[string]cir.LoopOpt
	BitWidths map[string]int
}

// Clone deep-copies the directive set.
func (d Directives) Clone() Directives {
	out := Directives{Loops: map[string]cir.LoopOpt{}, BitWidths: map[string]int{}}
	for k, v := range d.Loops {
		out.Loops[k] = v
	}
	for k, v := range d.BitWidths {
		out.BitWidths[k] = v
	}
	return out
}

// Annotate returns a clone of k with the directives attached as pragmas.
// Unknown loop IDs or parameters are reported as errors: the design space
// and the kernel must agree.
func Annotate(k *cir.Kernel, d Directives) (*cir.Kernel, error) {
	out := cir.CloneKernel(k)
	for id, opt := range d.Loops {
		l := out.FindLoop(id)
		if l == nil {
			return nil, fmt.Errorf("merlin: directive for unknown loop %q: %w", id, ErrUnknownLoop)
		}
		if err := validateOpt(l, opt); err != nil {
			return nil, err
		}
		l.Opt = opt
	}
	for name, bw := range d.BitWidths {
		p := out.Param(name)
		if p == nil {
			return nil, fmt.Errorf("merlin: bit-width directive for unknown parameter %q: %w", name, ErrUnknownParam)
		}
		if !p.IsArray {
			return nil, fmt.Errorf("merlin: bit-width directive on scalar parameter %q: %w", name, ErrIllegalBitWidth)
		}
		if err := validateBitWidth(bw); err != nil {
			return nil, fmt.Errorf("merlin: parameter %q: %w", name, err)
		}
		p.BitWidth = bw
	}
	return out, nil
}

// Materialize returns a clone of k with the directives applied as real
// structural rewrites: tiling splits loops, parallel factors unroll bodies
// (using tree reduction for additive reduction loops), and pipeline
// flatten fully unrolls sub-loops. Pipeline on/off remains an annotation
// (it changes scheduling, not semantics).
//
// Loops are processed outermost-first so that directives target the
// original loop IDs; tiling-created inner loops get derived IDs and take
// no further directives.
func Materialize(k *cir.Kernel, d Directives) (*cir.Kernel, error) {
	out, err := Annotate(k, d)
	if err != nil {
		return nil, err
	}
	// Stable outer-to-inner order: Loops() is preorder.
	ids := make([]string, 0, len(d.Loops))
	for _, l := range out.Loops() {
		if _, ok := d.Loops[l.ID]; ok {
			ids = append(ids, l.ID)
		}
	}
	for _, id := range ids {
		l := out.FindLoop(id)
		if l == nil {
			// The loop was dissolved by an enclosing flatten; its
			// directive is dead (paper Impediment 2: flatten invalidates
			// sub-loop factors).
			continue
		}
		opt := d.Loops[id]
		if opt.Tile > 1 {
			if err := TileLoop(out, id, opt.Tile); err != nil {
				return nil, err
			}
			l = out.FindLoop(id)
		}
		if opt.Pipeline == cir.PipeFlatten {
			if err := FlattenLoop(out, id); err != nil {
				return nil, err
			}
			l = out.FindLoop(id)
		}
		if opt.Parallel > 1 && l != nil {
			if err := UnrollLoop(out, id, opt.Parallel); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func validateOpt(l *cir.Loop, opt cir.LoopOpt) error {
	tc := l.TripCount()
	if opt.Tile < 0 || opt.Parallel < 0 {
		return fmt.Errorf("merlin: loop %s: negative factor: %w", l.ID, ErrIllegalFactor)
	}
	if tc > 0 {
		if int64(opt.Tile) > tc {
			return fmt.Errorf("merlin: loop %s: tile factor %d exceeds trip count %d: %w", l.ID, opt.Tile, tc, ErrIllegalFactor)
		}
		if int64(opt.Parallel) > tc {
			return fmt.Errorf("merlin: loop %s: parallel factor %d exceeds trip count %d: %w", l.ID, opt.Parallel, tc, ErrIllegalFactor)
		}
	}
	return nil
}

func validateBitWidth(bw int) error {
	if bw < 8 || bw > 512 {
		return fmt.Errorf("bit-width %d outside (8, 512]: %w", bw, ErrIllegalBitWidth)
	}
	if bw&(bw-1) != 0 {
		return fmt.Errorf("bit-width %d is not a power of two: %w", bw, ErrIllegalBitWidth)
	}
	return nil
}

// replaceLoop substitutes loop id in the kernel body with the given
// statements.
func replaceLoop(k *cir.Kernel, id string, repl []cir.Stmt) bool {
	var walk func(b cir.Block) (cir.Block, bool)
	walk = func(b cir.Block) (cir.Block, bool) {
		for i, s := range b {
			switch s := s.(type) {
			case *cir.Loop:
				if s.ID == id {
					out := make(cir.Block, 0, len(b)-1+len(repl))
					out = append(out, b[:i]...)
					out = append(out, repl...)
					out = append(out, b[i+1:]...)
					return out, true
				}
				if nb, ok := walk(s.Body); ok {
					s.Body = nb
					return b, true
				}
			case *cir.If:
				if nb, ok := walk(s.Then); ok {
					s.Then = nb
					return b, true
				}
				if nb, ok := walk(s.Else); ok {
					s.Else = nb
					return b, true
				}
			case *cir.While:
				if nb, ok := walk(s.Body); ok {
					s.Body = nb
					return b, true
				}
			}
		}
		return b, false
	}
	nb, ok := walk(k.Body)
	if ok {
		k.Body = nb
	}
	return ok
}

// sortedKeys returns map keys in deterministic order (test stability).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
