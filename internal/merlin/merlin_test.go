package merlin_test

import (
	"math"
	"math/rand"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/blaze"
	"s2fa/internal/cir"
	"s2fa/internal/merlin"
)

// execKernel runs a kernel over generated inputs and returns its output
// buffers.
func execKernel(t *testing.T, a *apps.App, k *cir.Kernel, n int) map[string][]cir.Value {
	t.Helper()
	cls, err := a.Class()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1234))
	tasks := a.Gen(rng, n)
	layout := blaze.Layout{Class: cls, Kernel: k}
	bufs, err := layout.Serialize(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range layout.AllocOutputs(n) {
		bufs[name] = out
	}
	ev := cir.NewEvaluator(k)
	ev.MaxSteps = 2_000_000_000
	if err := ev.Execute(n, bufs); err != nil {
		t.Fatalf("execute: %v", err)
	}
	return bufs
}

func compareOutputs(t *testing.T, k *cir.Kernel, base, xf map[string][]cir.Value) {
	t.Helper()
	for _, p := range k.Params {
		if !p.IsOutput {
			continue
		}
		b, x := base[p.Name], xf[p.Name]
		if len(b) != len(x) {
			t.Fatalf("output %s: length %d vs %d", p.Name, len(b), len(x))
		}
		for i := range b {
			if p.Elem.IsFloat() {
				d := math.Abs(b[i].AsFloat() - x[i].AsFloat())
				tol := 1e-6 * (1 + math.Abs(b[i].AsFloat()))
				if d > tol {
					t.Fatalf("output %s[%d]: %v vs %v", p.Name, i, b[i], x[i])
				}
			} else if b[i].AsInt() != x[i].AsInt() {
				t.Fatalf("output %s[%d]: %v vs %v", p.Name, i, b[i], x[i])
			}
		}
	}
}

// TestMaterializeSemanticsAllApps is the transformation-correctness
// backbone: for every workload, materialized Merlin rewrites (task-loop
// unrolling with remainder guards, tiling with non-dividing factors,
// inner-loop unrolling including tree reductions) must preserve kernel
// semantics exactly (up to fp reassociation tolerance).
func TestMaterializeSemanticsAllApps(t *testing.T) {
	const n = 5 // deliberately not divisible by the unroll factors
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			k, err := a.Kernel()
			if err != nil {
				t.Fatal(err)
			}
			base := execKernel(t, a, k, n)

			d := merlin.Directives{Loops: map[string]cir.LoopOpt{}, BitWidths: map[string]int{}}
			d.Loops[k.TaskLoopID] = cir.LoopOpt{Parallel: 3, Pipeline: cir.PipeOn}
			inner := 0
			for _, li := range k.Loops() {
				if li.ID == k.TaskLoopID || li.TripCount() < 4 {
					continue
				}
				switch inner % 2 {
				case 0:
					d.Loops[li.ID] = cir.LoopOpt{Tile: 3}
				case 1:
					d.Loops[li.ID] = cir.LoopOpt{Parallel: 4, Pipeline: cir.PipeOn}
				}
				inner++
			}
			xk, err := merlin.Materialize(k, d)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			xf := execKernel(t, a, xk, n)
			compareOutputs(t, k, base, xf)
		})
	}
}

// TestFlattenSemantics checks flatten (full sub-loop unrolling) on the
// nested ML kernels.
func TestFlattenSemantics(t *testing.T) {
	for _, name := range []string{"KMeans", "KNN", "LR"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a := apps.Get(name)
			k, err := a.Kernel()
			if err != nil {
				t.Fatal(err)
			}
			base := execKernel(t, a, k, 4)
			d := merlin.Directives{Loops: map[string]cir.LoopOpt{
				k.TaskLoopID: {Pipeline: cir.PipeFlatten},
			}}
			xk, err := merlin.Materialize(k, d)
			if err != nil {
				t.Fatalf("flatten: %v", err)
			}
			if len(xk.FindLoop(k.TaskLoopID).Body) == 0 {
				t.Fatal("flattened task loop is empty")
			}
			for _, li := range xk.Loops() {
				if li.ID != k.TaskLoopID {
					t.Fatalf("sub-loop %s survived flatten", li.ID)
				}
			}
			xf := execKernel(t, a, xk, 4)
			compareOutputs(t, k, base, xf)
		})
	}
}

// TestTreeReductionShape checks that unrolling an additive reduction loop
// produces a balanced combine rather than a serial chain.
func TestTreeReductionShape(t *testing.T) {
	a := apps.Get("LR")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	// Find the dot-product loop: depth 1, additive scalar recurrence.
	info := cir.Analyze(k)
	var target string
	for _, li := range info.All {
		if li.Depth == 1 && len(li.ScalarRec) > 0 {
			target = li.Loop.ID
			break
		}
	}
	if target == "" {
		t.Fatal("no reduction loop found in LR")
	}
	d := merlin.Directives{Loops: map[string]cir.LoopOpt{target: {Parallel: 4}}}
	xk, err := merlin.Materialize(k, d)
	if err != nil {
		t.Fatal(err)
	}
	// The materialized kernel must contain the partial-accumulator array.
	found := false
	var walk func(b cir.Block)
	walk = func(b cir.Block) {
		for _, s := range b {
			switch s := s.(type) {
			case *cir.ArrDecl:
				if len(s.Name) > 4 && s.Name[len(s.Name)-4:] != "" && containsSub(s.Name, "_tr_") {
					found = true
				}
			case *cir.If:
				walk(s.Then)
				walk(s.Else)
			case *cir.Loop:
				walk(s.Body)
			case *cir.While:
				walk(s.Body)
			}
		}
	}
	walk(xk.Body)
	if !found {
		t.Errorf("tree-reduction partial accumulator not materialized")
	}
	base := execKernel(t, a, k, 3)
	xf := execKernel(t, a, xk, 3)
	compareOutputs(t, k, base, xf)
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestAnnotateValidation checks directive validation errors.
func TestAnnotateValidation(t *testing.T) {
	a := apps.Get("KMeans")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merlin.Annotate(k, merlin.Directives{
		Loops: map[string]cir.LoopOpt{"no-such-loop": {}},
	}); err == nil {
		t.Error("unknown loop accepted")
	}
	if _, err := merlin.Annotate(k, merlin.Directives{
		BitWidths: map[string]int{"in": 100},
	}); err == nil {
		t.Error("non-power-of-two bitwidth accepted")
	}
	if _, err := merlin.Annotate(k, merlin.Directives{
		BitWidths: map[string]int{"in": 1024},
	}); err == nil {
		t.Error("oversized bitwidth accepted")
	}
	// Parallel factor beyond trip count must be rejected (Table 1).
	var innerID string
	for _, l := range k.Loops() {
		if l.ID != k.TaskLoopID && l.TripCount() > 0 {
			innerID = l.ID
			break
		}
	}
	if _, err := merlin.Annotate(k, merlin.Directives{
		Loops: map[string]cir.LoopOpt{innerID: {Parallel: 100000}},
	}); err == nil {
		t.Error("oversized parallel factor accepted")
	}
}
