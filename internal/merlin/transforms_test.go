package merlin_test

import (
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/merlin"
)

func TestTileLoopStructure(t *testing.T) {
	a := apps.Get("KMeans")
	k, err := a.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	// Tile the K loop (L1, trip 16) by a non-dividing factor.
	xk := cir.CloneKernel(k)
	if err := merlin.TileLoop(xk, "L1", 5); err != nil {
		t.Fatal(err)
	}
	outer := xk.FindLoop("L1")
	if outer == nil {
		t.Fatal("outer tile loop lost its ID")
	}
	if outer.Step != 5 {
		t.Errorf("outer step = %d, want 5", outer.Step)
	}
	inner := xk.FindLoop("L1.tile")
	if inner == nil {
		t.Fatal("inner tile loop missing")
	}
	if inner.Step != 1 {
		t.Errorf("inner step = %d", inner.Step)
	}
	// Inner bound is a min() guard.
	if call, ok := inner.Hi.(*cir.Call); !ok || call.Name != "min" {
		t.Errorf("inner bound = %s", cir.ExprString(inner.Hi))
	}
	// Tiling semantics verified by execution in TestMaterializeSemanticsAllApps.
}

func TestTileErrors(t *testing.T) {
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	xk := cir.CloneKernel(k)
	if err := merlin.TileLoop(xk, "nope", 4); err == nil {
		t.Error("unknown loop accepted")
	}
	if err := merlin.TileLoop(xk, "L1", 1); err == nil {
		t.Error("tile factor 1 accepted")
	}
}

func TestUnrollErrors(t *testing.T) {
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	xk := cir.CloneKernel(k)
	if err := merlin.UnrollLoop(xk, "nope", 4); err == nil {
		t.Error("unknown loop accepted")
	}
	if err := merlin.UnrollLoop(xk, "L1", 0); err == nil {
		t.Error("factor 0 accepted")
	}
}

func TestFlattenDissolvesSubLoops(t *testing.T) {
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	xk := cir.CloneKernel(k)
	if err := merlin.FlattenLoop(xk, "L1"); err != nil {
		t.Fatal(err)
	}
	if xk.FindLoop("L2") != nil {
		t.Error("sub-loop survived flatten")
	}
	if xk.FindLoop("L1") == nil {
		t.Error("flattened loop itself must remain")
	}
	// The flattened body contains 8 unrolled copies of the distance step.
	src := cir.Print(xk)
	if strings.Count(src, "centers[") < 8 {
		t.Errorf("flattened body does not show the unrolled accesses:\n%s", src)
	}
}

func TestFlattenDirectiveInvalidatesSubLoopFactors(t *testing.T) {
	// Paper Impediment 2: flatten fully unrolls sub-loops, invalidating
	// their factors; Materialize must tolerate directives for dissolved
	// loops.
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	d := merlin.Directives{Loops: map[string]cir.LoopOpt{
		"L1": {Pipeline: cir.PipeFlatten},
		"L2": {Parallel: 4, Pipeline: cir.PipeOn}, // dissolved by L1's flatten
	}}
	xk, err := merlin.Materialize(k, d)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if xk.FindLoop("L2") != nil {
		t.Error("L2 should be dissolved")
	}
}

func TestAnnotateDoesNotMutateOriginal(t *testing.T) {
	a := apps.Get("KMeans")
	k, _ := a.Kernel()
	_, err := merlin.Annotate(k, merlin.Directives{
		Loops:     map[string]cir.LoopOpt{"L1": {Parallel: 8, Pipeline: cir.PipeOn}},
		BitWidths: map[string]int{"in": 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.FindLoop("L1").Opt.Parallel != 0 {
		t.Error("Annotate mutated the original kernel")
	}
	if k.Param("in").BitWidth != 0 {
		t.Error("Annotate mutated the original parameter")
	}
}

func TestDirectivesClone(t *testing.T) {
	d := merlin.Directives{
		Loops:     map[string]cir.LoopOpt{"L0": {Parallel: 2}},
		BitWidths: map[string]int{"in": 64},
	}
	cp := d.Clone()
	cp.Loops["L0"] = cir.LoopOpt{Parallel: 9}
	cp.BitWidths["in"] = 512
	if d.Loops["L0"].Parallel != 2 || d.BitWidths["in"] != 64 {
		t.Error("Clone shares state with the original")
	}
}
