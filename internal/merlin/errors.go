package merlin

import "errors"

// Typed transformation errors. Every legality rejection the library
// produces wraps one of these sentinels, so callers (the DSE evaluator,
// the lint cross-checks, the CLI) can distinguish "this design point is
// illegal" from "the transformation engine hit an internal bug" with
// errors.Is instead of string matching.
var (
	// ErrUnknownLoop: a directive addresses a loop ID the kernel does not
	// contain — the design space and the kernel disagree.
	ErrUnknownLoop = errors.New("unknown loop")
	// ErrUnknownParam: a bit-width directive addresses a parameter the
	// kernel does not declare.
	ErrUnknownParam = errors.New("unknown parameter")
	// ErrIllegalFactor: a tile/parallel factor is negative, below the
	// transform's minimum, or exceeds the loop's constant trip count
	// (Table 1: factors range over [1, TC)).
	ErrIllegalFactor = errors.New("illegal factor")
	// ErrNonConstantTrip: pipeline flatten must fully unroll every
	// sub-loop, which requires compile-time-constant trip counts.
	ErrNonConstantTrip = errors.New("non-constant trip count")
	// ErrCarriedDependence: the loop carries a dependence that is not a
	// recognized reduction form, so the requested parallel lanes would
	// race (reported by the precondition checks; the transforms themselves
	// still apply, serializing the chain).
	ErrCarriedDependence = errors.New("carried dependence")
	// ErrIllegalBitWidth: an interface width outside {2^n : 8 <= 2^n <=
	// 512}, or targeting a scalar parameter.
	ErrIllegalBitWidth = errors.New("illegal bit-width")
)

// IsLegality reports whether err is one of the typed legality rejections
// (as opposed to an internal transformation bug).
func IsLegality(err error) bool {
	for _, e := range []error{
		ErrUnknownLoop, ErrUnknownParam, ErrIllegalFactor,
		ErrNonConstantTrip, ErrCarriedDependence, ErrIllegalBitWidth,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}
