package merlin

import (
	"fmt"

	"s2fa/internal/cir"
	"s2fa/internal/lint"
)

// TileLoop splits the loop with the given ID into an outer tile loop
// (which keeps the original ID, so later directives still resolve) and an
// inner intra-tile loop with a derived ID:
//
//	for (v = lo; v < hi; v += s)            { body }
//	  =>
//	for (vt = lo; vt < hi; vt += s*t)
//	    for (v = vt; v < min(vt + s*t, hi); v += s) { body }
//
// The min() guard makes non-dividing tile factors safe.
func TileLoop(k *cir.Kernel, id string, t int) error {
	l := k.FindLoop(id)
	if l == nil {
		return fmt.Errorf("merlin: tile: loop %q not found: %w", id, ErrUnknownLoop)
	}
	if t < 2 {
		return fmt.Errorf("merlin: tile: factor %d must be >= 2: %w", t, ErrIllegalFactor)
	}
	tileVar := l.Var + "_t"
	bigStep := l.Step * int64(t)
	inner := &cir.Loop{
		ID:   id + ".tile",
		Var:  l.Var,
		Lo:   &cir.VarRef{K: cir.Int, Name: tileVar},
		Step: l.Step,
		Hi: &cir.Call{K: cir.Int, Name: "min", Args: []cir.Expr{
			&cir.Binary{K: cir.Int, Op: cir.Add,
				L: &cir.VarRef{K: cir.Int, Name: tileVar},
				R: &cir.IntLit{K: cir.Int, Val: bigStep}},
			cir.CloneExpr(l.Hi),
		}},
		Body:      l.Body,
		Reduction: l.Reduction,
		Opt:       cir.LoopOpt{Pipeline: l.Opt.Pipeline},
	}
	l.Var = tileVar
	l.Step = bigStep
	l.Body = cir.Block{inner}
	l.Opt = cir.LoopOpt{Parallel: l.Opt.Parallel, Tile: l.Opt.Tile}
	return nil
}

// UnrollLoop duplicates the loop body factor times per iteration,
// implementing the Merlin coarse-/fine-grained parallel directive. For
// additive reduction loops it materializes a tree reduction instead of a
// serial chain, matching the Merlin transformation library's behaviour.
// Remainder iterations are handled with guards, so any factor up to the
// trip count is legal.
func UnrollLoop(k *cir.Kernel, id string, factor int) error {
	l := k.FindLoop(id)
	if l == nil {
		return fmt.Errorf("merlin: parallel: loop %q not found: %w", id, ErrUnknownLoop)
	}
	if factor < 2 {
		return fmt.Errorf("merlin: parallel: factor %d must be >= 2: %w", factor, ErrIllegalFactor)
	}
	if acc, rhs, ok := lint.ReductionForm(l); ok {
		return unrollReduction(k, l, factor, acc, rhs)
	}
	return unrollPlain(l, factor)
}

func unrollPlain(l *cir.Loop, factor int) error {
	origStep := l.Step
	origBody := l.Body
	hi := l.Hi
	var body cir.Block
	for lane := 0; lane < factor; lane++ {
		copyBody := cir.RenameLocals(origBody, fmt.Sprintf("_u%d", lane))
		if lane > 0 {
			off := &cir.Binary{K: cir.Int, Op: cir.Add,
				L: &cir.VarRef{K: cir.Int, Name: l.Var},
				R: &cir.IntLit{K: cir.Int, Val: int64(lane) * origStep}}
			copyBody = cir.SubstVarBlock(copyBody, l.Var, off)
			guard := &cir.Binary{K: cir.Bool, Op: cir.Lt, L: cir.CloneExpr(off), R: cir.CloneExpr(hi)}
			body = append(body, &cir.If{Cond: guard, Then: copyBody})
		} else {
			body = append(body, copyBody...)
		}
	}
	l.Step = origStep * int64(factor)
	l.Body = body
	return nil
}

// unrollReduction materializes a tree reduction: the body is unrolled
// like plain unrolling (keeping every statement), but each lane's
// recurrence update targets a private partial accumulator; a balanced
// adder tree combines the partials after the loop.
func unrollReduction(k *cir.Kernel, l *cir.Loop, factor int, acc string, addend cir.Expr) error {
	_ = addend
	kind := cir.Void
	for _, s := range l.Body {
		if a, ok := s.(*cir.Assign); ok {
			if vr, ok := a.LHS.(*cir.VarRef); ok && vr.Name == acc {
				kind = vr.K
			}
		}
	}
	if kind == cir.Void {
		return unrollPlain(l, factor)
	}
	part := acc + "_tr_" + l.ID
	origStep := l.Step
	origBody := l.Body
	hi := l.Hi

	pre := cir.Block{&cir.ArrDecl{Name: part, Elem: kind, Len: factor}}
	zeroVar := "_z_" + l.ID
	pre = append(pre, &cir.Loop{
		ID: l.ID + ".trz", Var: zeroVar,
		Lo: &cir.IntLit{K: cir.Int, Val: 0}, Hi: &cir.IntLit{K: cir.Int, Val: int64(factor)},
		Step: 1,
		Body: cir.Block{&cir.Assign{
			LHS: &cir.Index{K: kind, Arr: part, Idx: &cir.VarRef{K: cir.Int, Name: zeroVar}},
			RHS: zeroOf(kind),
		}},
	})

	var body cir.Block
	for lane := 0; lane < factor; lane++ {
		copyBody := cir.RenameLocals(origBody, fmt.Sprintf("_u%d", lane))
		// Redirect the recurrence to the lane's partial accumulator.
		lanePart := func() cir.Expr {
			return &cir.Index{K: kind, Arr: part, Idx: &cir.IntLit{K: cir.Int, Val: int64(lane)}}
		}
		copyBody = redirectAccum(copyBody, acc, lanePart)
		if lane > 0 {
			off := &cir.Binary{K: cir.Int, Op: cir.Add,
				L: &cir.VarRef{K: cir.Int, Name: l.Var},
				R: &cir.IntLit{K: cir.Int, Val: int64(lane) * origStep}}
			copyBody = cir.SubstVarBlock(copyBody, l.Var, off)
			guard := &cir.Binary{K: cir.Bool, Op: cir.Lt, L: cir.CloneExpr(off), R: cir.CloneExpr(hi)}
			body = append(body, &cir.If{Cond: guard, Then: copyBody})
		} else {
			body = append(body, copyBody...)
		}
	}

	l.Step = origStep * int64(factor)
	l.Body = body

	// Balanced adder tree over the partials, folded into the original
	// accumulator.
	terms := make([]cir.Expr, factor)
	for i := 0; i < factor; i++ {
		terms[i] = &cir.Index{K: kind, Arr: part, Idx: &cir.IntLit{K: cir.Int, Val: int64(i)}}
	}
	tree := balancedSum(kind, terms)
	post := &cir.Assign{
		LHS: &cir.VarRef{K: kind, Name: acc},
		RHS: &cir.Binary{K: kind, Op: cir.Add, L: &cir.VarRef{K: kind, Name: acc}, R: tree},
	}

	loopCopy := *l
	if !replaceLoop(k, l.ID, append(append(cir.Block{}, pre...), &loopCopy, post)) {
		return fmt.Errorf("merlin: tree reduction: loop %q not found for splice", l.ID)
	}
	return nil
}

// redirectAccum rewrites `acc = acc + e` statements (at any nesting depth)
// so both sides use the provided element expression instead of acc.
func redirectAccum(b cir.Block, acc string, elem func() cir.Expr) cir.Block {
	out := make(cir.Block, 0, len(b))
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Assign:
			if vr, ok := s.LHS.(*cir.VarRef); ok && vr.Name == acc {
				out = append(out, &cir.Assign{
					LHS: elem(),
					RHS: cir.SubstVar(s.RHS, acc, elem()),
				})
				continue
			}
			out = append(out, s)
		case *cir.If:
			out = append(out, &cir.If{
				Cond: s.Cond,
				Then: redirectAccum(s.Then, acc, elem),
				Else: redirectAccum(s.Else, acc, elem),
			})
		case *cir.Loop:
			s.Body = redirectAccum(s.Body, acc, elem)
			out = append(out, s)
		case *cir.While:
			s.Body = redirectAccum(s.Body, acc, elem)
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}

func balancedSum(kind cir.Kind, terms []cir.Expr) cir.Expr {
	if len(terms) == 1 {
		return terms[0]
	}
	mid := len(terms) / 2
	return &cir.Binary{K: kind, Op: cir.Add,
		L: balancedSum(kind, terms[:mid]),
		R: balancedSum(kind, terms[mid:])}
}

func zeroOf(kind cir.Kind) cir.Expr {
	if kind.IsFloat() {
		return &cir.FloatLit{K: kind, Val: 0}
	}
	return &cir.IntLit{K: kind, Val: 0}
}

// FlattenLoop implements the Merlin "pipeline flatten" transformation: it
// fully unrolls every sub-loop of the target loop so the whole nest
// becomes a single fine-grained pipelined body (paper §4.1). Sub-loops
// must have constant trip counts; otherwise the design point is
// infeasible.
func FlattenLoop(k *cir.Kernel, id string) error {
	l := k.FindLoop(id)
	if l == nil {
		return fmt.Errorf("merlin: flatten: loop %q not found: %w", id, ErrUnknownLoop)
	}
	body, err := fullyUnrollBlock(l.Body)
	if err != nil {
		return fmt.Errorf("merlin: flatten %s: %w", id, err)
	}
	l.Body = body
	if l.Opt.Pipeline == cir.PipeFlatten {
		l.Opt.Pipeline = cir.PipeOn
	}
	return nil
}

func fullyUnrollBlock(b cir.Block) (cir.Block, error) {
	var out cir.Block
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Loop:
			sub, err := fullyUnrollBlock(s.Body)
			if err != nil {
				return nil, err
			}
			lo, okLo := s.Lo.(*cir.IntLit)
			hi, okHi := s.Hi.(*cir.IntLit)
			if !okLo || !okHi {
				return nil, fmt.Errorf("sub-loop %s has non-constant bounds: %w", s.ID, ErrNonConstantTrip)
			}
			iter := 0
			for v := lo.Val; v < hi.Val; v += s.Step {
				cp := cir.RenameLocals(sub, fmt.Sprintf("_f%d", iter))
				cp = cir.SubstVarBlock(cp, s.Var, &cir.IntLit{K: cir.Int, Val: v})
				out = append(out, cp...)
				iter++
			}
		case *cir.If:
			thenB, err := fullyUnrollBlock(s.Then)
			if err != nil {
				return nil, err
			}
			elseB, err := fullyUnrollBlock(s.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, &cir.If{Cond: cir.CloneExpr(s.Cond), Then: thenB, Else: elseB})
		case *cir.While:
			return nil, fmt.Errorf("sub-region is a variable-trip while loop: %w", ErrNonConstantTrip)
		default:
			out = append(out, cir.CloneStmt(s))
		}
	}
	return out, nil
}
