package merlin

import (
	"fmt"

	"s2fa/internal/cir"
	"s2fa/internal/lint"
)

// Precondition entry points backed by the static verifier (internal/
// lint). Each answers "would this single transform be legal on this
// kernel?" without cloning or rewriting anything, returning a typed error
// (errors.go) classified from the lint findings. The transforms
// themselves stay permissive where the hardware semantics are permissive
// — e.g. UnrollLoop on a carried loop serializes rather than fails — so
// CheckUnroll is strictly stricter than UnrollLoop: it also rejects
// factor requests whose parallelism a carried dependence would nullify.

// CheckTile reports whether tiling loop id by t is legal.
func CheckTile(k *cir.Kernel, id string, t int) error {
	c := lint.NewChecker(k)
	if t < 2 {
		return fmt.Errorf("merlin: tile loop %q: factor %d below minimum 2: %w", id, t, ErrIllegalFactor)
	}
	fs := c.Directives(map[string]cir.LoopOpt{id: {Tile: t}}, nil)
	return classify(fs.Errors())
}

// CheckUnroll reports whether unrolling loop id by factor is legal and
// race-free. A carried non-reduction dependence is reported as
// ErrCarriedDependence even though the transform would still apply
// (serialized): callers asking for parallel semantics should know.
func CheckUnroll(k *cir.Kernel, id string, factor int) error {
	c := lint.NewChecker(k)
	if factor < 2 {
		return fmt.Errorf("merlin: parallel loop %q: factor %d below minimum 2: %w", id, factor, ErrIllegalFactor)
	}
	fs := c.Directives(map[string]cir.LoopOpt{id: {Parallel: factor}}, nil)
	if err := classify(fs.Errors()); err != nil {
		return err
	}
	for _, f := range fs.ByRule(lint.RuleParallelRace) {
		return fmt.Errorf("merlin: parallel loop %q: %s: %w", id, f.Detail, ErrCarriedDependence)
	}
	return nil
}

// CheckFlatten reports whether pipeline-flattening loop id is legal.
func CheckFlatten(k *cir.Kernel, id string) error {
	c := lint.NewChecker(k)
	fs := c.Directives(map[string]cir.LoopOpt{id: {Pipeline: cir.PipeFlatten}}, nil)
	return classify(fs.Errors())
}

// CheckDirectives validates a complete directive set statically,
// returning the first classified legality error (nil when the set is
// statically legal). This is the entry point the DSE pruner uses via a
// cached lint.Checker; this convenience form re-analyzes the kernel.
func CheckDirectives(k *cir.Kernel, d Directives) error {
	c := lint.NewChecker(k)
	return classify(c.Directives(d.Loops, d.BitWidths).Errors())
}

// classify maps lint error findings to the typed sentinel errors.
func classify(errs lint.Findings) error {
	for _, f := range errs {
		switch f.Rule {
		case lint.RuleUnknownLoop:
			return fmt.Errorf("merlin: loop %q: %s: %w", f.LoopID, f.Detail, ErrUnknownLoop)
		case lint.RuleUnknownParam:
			return fmt.Errorf("merlin: parameter %q: %s: %w", f.Where, f.Detail, ErrUnknownParam)
		case lint.RuleIllegalFactor:
			return fmt.Errorf("merlin: loop %q: %s: %w", f.LoopID, f.Detail, ErrIllegalFactor)
		case lint.RuleFlattenVarTrip:
			return fmt.Errorf("merlin: loop %q: %s: %w", f.LoopID, f.Detail, ErrNonConstantTrip)
		case lint.RuleIllegalWidth:
			return fmt.Errorf("merlin: parameter %q: %s: %w", f.Where, f.Detail, ErrIllegalBitWidth)
		}
	}
	if len(errs) > 0 {
		f := errs[0]
		return fmt.Errorf("merlin: %s: %s", f.Rule, f.Detail)
	}
	return nil
}
