package exp

import (
	"fmt"
	"sync"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/dse"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/merlin"
	"s2fa/internal/space"
)

// Suite runs and caches the per-workload artifacts every experiment
// shares: the compiled kernel, its design space, the DSE outcomes for
// each mode, the JVM baseline, and the manual-design estimate. All
// randomness is derived from one seed, so every table and figure is
// exactly reproducible.
type Suite struct {
	Seed   int64
	Device *fpga.Device

	mu    sync.Mutex
	cache map[string]*AppResult
}

// AppResult bundles everything the experiments need for one workload.
type AppResult struct {
	App    *apps.App
	Kernel *cir.Kernel
	Space  *space.Space

	JVMSeconds float64

	S2FA    *dse.Outcome
	Vanilla *dse.Outcome
	Trivial *dse.Outcome

	// BestReport is the HLS report of the S2FA DSE's best design.
	BestReport hls.Report
	// ManualReport is the HLS report of the expert manual design.
	ManualReport hls.Report
}

// S2FASpeedup is the Fig. 4 speedup of the S2FA-generated design over the
// single-threaded JVM.
func (r *AppResult) S2FASpeedup() float64 {
	if !r.S2FA.Best.Feasible {
		return 0
	}
	return r.JVMSeconds / r.S2FA.Best.Objective
}

// ManualSpeedup is the Fig. 4 speedup of the manual design.
func (r *AppResult) ManualSpeedup() float64 {
	if !r.ManualReport.Feasible {
		return 0
	}
	return r.JVMSeconds / r.ManualReport.Seconds()
}

// NewSuite builds a suite on the VU9P device.
func NewSuite(seed int64) *Suite {
	return &Suite{Seed: seed, Device: fpga.VU9P(), cache: map[string]*AppResult{}}
}

// Modes selects which DSE runs Result performs.
type Modes struct {
	Vanilla bool
	Trivial bool
}

// Result computes (or returns cached) artifacts for the named app.
func (s *Suite) Result(name string, modes Modes) (*AppResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.cache[name]
	if r == nil {
		a := apps.Get(name)
		if a == nil {
			return nil, fmt.Errorf("exp: unknown app %q", name)
		}
		k, err := a.Kernel()
		if err != nil {
			return nil, err
		}
		jvm, err := JVMSecondsFor(a, a.Tasks)
		if err != nil {
			return nil, err
		}
		r = &AppResult{App: a, Kernel: k, Space: space.Identify(k), JVMSeconds: jvm}
		s.cache[name] = r
	}

	if r.S2FA == nil {
		eval := dse.NewEvaluator(r.Kernel, r.Space, s.Device, int64(r.App.Tasks), hls.Options{})
		cfg := dse.S2FAConfig(s.Seed)
		cfg.Device = s.Device
		r.S2FA = dse.Run(r.Kernel, r.Space, eval, cfg)
		if rep, ok := dse.Report(r.S2FA.Best); ok {
			r.BestReport = rep
		}
		loops, bw := r.App.Manual.Directives(r.Kernel)
		ann, err := merlin.Annotate(r.Kernel, merlin.Directives{Loops: loops, BitWidths: bw})
		if err != nil {
			return nil, fmt.Errorf("exp: manual design for %s: %w", name, err)
		}
		r.ManualReport = hls.Estimate(ann, s.Device, int64(r.App.Tasks), hls.Options{StageSplit: r.App.Manual.StageSplit})
	}
	if modes.Vanilla && r.Vanilla == nil {
		// Stock OpenTuner sees no gradient in the infeasible region.
		eval := dse.FlatInfeasible(dse.NewEvaluator(r.Kernel, r.Space, s.Device, int64(r.App.Tasks), hls.Options{}))
		r.Vanilla = dse.Run(r.Kernel, r.Space, eval, dse.VanillaConfig(s.Seed))
	}
	if modes.Trivial && r.Trivial == nil {
		eval := dse.NewEvaluator(r.Kernel, r.Space, s.Device, int64(r.App.Tasks), hls.Options{})
		r.Trivial = dse.Run(r.Kernel, r.Space, eval, dse.TrivialStopConfig(s.Seed))
	}
	return r, nil
}

// AppNames returns the workloads in Table 2 order.
func AppNames() []string {
	var out []string
	for _, a := range apps.All() {
		out = append(out, a.Name)
	}
	return out
}
