package exp

import (
	"fmt"
	"sync"

	"s2fa/internal/apps"
	"s2fa/internal/cir"
	"s2fa/internal/dse"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/merlin"
	"s2fa/internal/obs"
	"s2fa/internal/space"
	"s2fa/internal/tuner"
)

// Suite runs and caches the per-workload artifacts every experiment
// shares: the compiled kernel, its design space, the DSE outcomes for
// each mode, the JVM baseline, and the manual-design estimate. All
// randomness is derived from one seed, so every table and figure is
// exactly reproducible.
type Suite struct {
	Seed   int64
	Device *fpga.Device
	// Engine selects the DSE execution engine for every run the suite
	// performs; Parallelism sizes the evaluation pool for
	// dse.EngineParallel. Results are byte-identical across engines —
	// these only trade wall-clock time.
	Engine      dse.Engine
	Parallelism int
	// JIT selects the closure-compiled engine for the per-app JVM
	// baselines (default on, see NewSuite). Like Engine, it only trades
	// wall-clock: the JIT preserves Counts bit-for-bit, so JVMSeconds —
	// and every figure derived from it — is byte-identical either way.
	JIT bool
	// Trace, when non-nil, receives per-app baseline spans and JIT
	// compile counters.
	Trace *obs.Trace

	// Locking is two-level so independent apps can be computed
	// concurrently (Warm): mu guards only the slot directory, each
	// slot's mutex serializes work on one app.
	mu    sync.Mutex
	cache map[string]*appSlot
}

type appSlot struct {
	mu sync.Mutex
	r  *AppResult
}

// AppResult bundles everything the experiments need for one workload.
type AppResult struct {
	App    *apps.App
	Kernel *cir.Kernel
	Space  *space.Space

	JVMSeconds float64

	S2FA    *dse.Outcome
	Vanilla *dse.Outcome
	Trivial *dse.Outcome

	// BestReport is the HLS report of the S2FA DSE's best design.
	BestReport hls.Report
	// ManualReport is the HLS report of the expert manual design.
	ManualReport hls.Report
}

// S2FASpeedup is the Fig. 4 speedup of the S2FA-generated design over the
// single-threaded JVM.
func (r *AppResult) S2FASpeedup() float64 {
	if !r.S2FA.Best.Feasible {
		return 0
	}
	return r.JVMSeconds / r.S2FA.Best.Objective
}

// ManualSpeedup is the Fig. 4 speedup of the manual design.
func (r *AppResult) ManualSpeedup() float64 {
	if !r.ManualReport.Feasible {
		return 0
	}
	return r.JVMSeconds / r.ManualReport.Seconds()
}

// NewSuite builds a suite on the VU9P device. The JVM baselines run
// closure-compiled; set JIT to false for the interpreter reference path.
func NewSuite(seed int64) *Suite {
	return &Suite{Seed: seed, Device: fpga.VU9P(), JIT: true, cache: map[string]*appSlot{}}
}

// Modes selects which DSE runs Result performs.
type Modes struct {
	Vanilla bool
	Trivial bool
}

// Result computes (or returns cached) artifacts for the named app.
// Calls for different apps may run concurrently (see Warm); work on one
// app is serialized.
func (s *Suite) Result(name string, modes Modes) (*AppResult, error) {
	s.mu.Lock()
	slot := s.cache[name]
	if slot == nil {
		slot = &appSlot{}
		s.cache[name] = slot
	}
	s.mu.Unlock()
	slot.mu.Lock()
	defer slot.mu.Unlock()
	r := slot.r
	if r == nil {
		a := apps.Get(name)
		if a == nil {
			return nil, fmt.Errorf("exp: unknown app %q", name)
		}
		k, err := a.Kernel()
		if err != nil {
			return nil, err
		}
		jvm, err := JVMSecondsForEngine(a, a.Tasks, s.JIT, s.Trace)
		if err != nil {
			return nil, err
		}
		r = &AppResult{App: a, Kernel: k, Space: space.Identify(k), JVMSeconds: jvm}
		slot.r = r
	}

	if r.S2FA == nil {
		cfg := dse.S2FAConfig(s.Seed)
		cfg.Device = s.Device
		r.S2FA = dse.Run(r.Kernel, r.Space, s.evaluator(r), s.configure(cfg))
		if rep, ok := dse.Report(r.S2FA.Best); ok {
			r.BestReport = rep
		}
		loops, bw := r.App.Manual.Directives(r.Kernel)
		ann, err := merlin.Annotate(r.Kernel, merlin.Directives{Loops: loops, BitWidths: bw})
		if err != nil {
			return nil, fmt.Errorf("exp: manual design for %s: %w", name, err)
		}
		r.ManualReport = hls.Estimate(ann, s.Device, int64(r.App.Tasks), hls.Options{StageSplit: r.App.Manual.StageSplit})
	}
	if modes.Vanilla && r.Vanilla == nil {
		// Stock OpenTuner sees no gradient in the infeasible region.
		eval := dse.FlatInfeasible(s.evaluator(r))
		r.Vanilla = dse.Run(r.Kernel, r.Space, eval, s.configure(dse.VanillaConfig(s.Seed)))
	}
	if modes.Trivial && r.Trivial == nil {
		r.Trivial = dse.Run(r.Kernel, r.Space, s.evaluator(r), s.configure(dse.TrivialStopConfig(s.Seed)))
	}
	return r, nil
}

// Warm precomputes the named apps' artifacts concurrently — one
// goroutine per app — when the suite runs the parallel engine; with the
// sequential engine it is a no-op, keeping the reference path
// single-threaded. Every app's computation is fully independent (own
// kernel, space, caches, RNG streams), so the results are byte-identical
// to computing them one by one; later Result calls are cache hits.
func (s *Suite) Warm(appNames []string, modes Modes) error {
	if s.Engine != dse.EngineParallel {
		return nil
	}
	if len(appNames) == 0 {
		appNames = AppNames()
	}
	errs := make([]error, len(appNames))
	var wg sync.WaitGroup
	for i, name := range appNames {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			_, errs[i] = s.Result(name, modes)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// configure stamps the suite's engine selection onto a DSE config.
func (s *Suite) configure(cfg dse.Config) dse.Config {
	cfg.Engine = s.Engine
	cfg.Parallelism = s.Parallelism
	return cfg
}

// evaluator builds the engine-appropriate evaluator for one app: the
// memoizing evaluator for the sequential engine, the pure (uncached)
// one for the parallel engine, which layers its own replay memoization.
func (s *Suite) evaluator(r *AppResult) tuner.Evaluator {
	if s.Engine == dse.EngineParallel {
		return dse.NewPureEvaluator(r.Kernel, r.Space, s.Device, int64(r.App.Tasks), hls.Options{})
	}
	return dse.NewEvaluator(r.Kernel, r.Space, s.Device, int64(r.App.Tasks), hls.Options{})
}

// AppNames returns the workloads in Table 2 order.
func AppNames() []string {
	var out []string
	for _, a := range apps.All() {
		out = append(out, a.Name)
	}
	return out
}
