package exp

import (
	"fmt"
	"math"
	"strings"
)

// Fig4Row is one group of bars in Fig. 4: the speedups of the manual HLS
// design and the S2FA-generated design over the single-threaded JVM
// executor for one kernel.
type Fig4Row struct {
	App           string
	Type          string
	JVMSeconds    float64
	S2FASpeedup   float64
	ManualSpeedup float64
}

// Fig4Result carries all rows plus the aggregate statistics quoted in the
// paper (§5.2 and the abstract/conclusion).
type Fig4Result struct {
	Rows []Fig4Row
	// MeanSpeedup is the geometric mean S2FA speedup over the JVM
	// (paper reports 181.5x average over all kernels).
	MeanSpeedup float64
	// VsManualPct is the average ratio of S2FA to manual speedup
	// (paper: ~85%).
	VsManualPct float64
	// StringProcMean / MLMax are the headline class numbers (paper:
	// 1225.2x for string processing; up to 49.9x for machine learning).
	StringProcMean float64
	MLMax          float64
}

// Fig4 reproduces Fig. 4 over all eight kernels.
func Fig4(s *Suite) (*Fig4Result, error) {
	out := &Fig4Result{}
	var logSum float64
	var ratioSum float64
	var n int
	var stringSum float64
	var stringN int
	for _, name := range AppNames() {
		r, err := s.Result(name, Modes{})
		if err != nil {
			return nil, err
		}
		row := Fig4Row{
			App:           name,
			Type:          r.App.Type,
			JVMSeconds:    r.JVMSeconds,
			S2FASpeedup:   r.S2FASpeedup(),
			ManualSpeedup: r.ManualSpeedup(),
		}
		out.Rows = append(out.Rows, row)
		if row.S2FASpeedup > 0 {
			logSum += math.Log(row.S2FASpeedup)
			n++
		}
		if row.ManualSpeedup > 0 && row.S2FASpeedup > 0 {
			ratio := row.S2FASpeedup / row.ManualSpeedup
			if ratio > 1 {
				ratio = 1 // S2FA beating the expert counts as parity
			}
			ratioSum += ratio
		}
		switch r.App.Type {
		case "string proc.":
			stringSum += row.S2FASpeedup
			stringN++
		case "classification", "regression":
			if row.S2FASpeedup > out.MLMax {
				out.MLMax = row.S2FASpeedup
			}
		}
	}
	if n > 0 {
		out.MeanSpeedup = math.Exp(logSum / float64(n))
		out.VsManualPct = ratioSum / float64(n) * 100
	}
	if stringN > 0 {
		out.StringProcMean = stringSum / float64(stringN)
	}
	return out, nil
}

// Render prints the figure as a table with log-scale bar sketches.
func (f *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 4: speedup over single-threaded JVM (log scale)\n")
	fmt.Fprintf(&b, "%-8s %-14s %12s %12s  %s\n", "kernel", "type", "S2FA", "manual", "bar (log10: S2FA #, manual +)")
	for _, r := range f.Rows {
		bar := logBar(r.S2FASpeedup, '#')
		mbar := logBar(r.ManualSpeedup, '+')
		fmt.Fprintf(&b, "%-8s %-14s %11.1fx %11.1fx  |%s\n%-38s|%s\n", r.App, r.Type, r.S2FASpeedup, r.ManualSpeedup, bar, "", mbar)
	}
	fmt.Fprintf(&b, "\ngeomean S2FA speedup: %.1fx (paper mean: 181.5x)\n", f.MeanSpeedup)
	fmt.Fprintf(&b, "S2FA vs manual designs: %.0f%% (paper: ~85%%)\n", f.VsManualPct)
	fmt.Fprintf(&b, "string processing mean: %.1fx (paper: 1225.2x); ML best: %.1fx (paper: 49.9x)\n",
		f.StringProcMean, f.MLMax)
	return b.String()
}

func logBar(x float64, c byte) string {
	if x <= 1 {
		return ""
	}
	n := int(math.Log10(x) * 12)
	if n > 48 {
		n = 48
	}
	return strings.Repeat(string(c), n)
}
