package exp

import (
	"math"
	"sync"
	"testing"

	"s2fa/internal/apps"
)

// The suite is expensive enough (seconds) to share across tests; all
// assertions are on seed-1 artifacts, which are fully deterministic.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suite = NewSuite(1) })
	return suite
}

// TestFig4Shape asserts the qualitative structure of Fig. 4 — the
// orderings and rough factors the paper reports — without pinning
// absolute numbers (our substrate is a simulator, see EXPERIMENTS.md).
func TestFig4Shape(t *testing.T) {
	s := sharedSuite(t)
	r, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig4Row{}
	for _, row := range r.Rows {
		rows[row.App] = row
	}
	if len(rows) != len(apps.All()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(apps.All()))
	}

	// Every kernel beats the JVM; PR barely (memory-bound, paper: "even
	// the manual HLS implementation cannot achieve a high performance").
	for app, row := range rows {
		if row.S2FASpeedup <= 1 {
			t.Errorf("%s S2FA speedup %.2fx <= 1", app, row.S2FASpeedup)
		}
	}
	if rows["PR"].S2FASpeedup > 15 {
		t.Errorf("PR speedup %.1fx too high for a memory-bound kernel", rows["PR"].S2FASpeedup)
	}

	// String processing dwarfs the ML kernels (paper: 1225.2x vs 49.9x).
	stringMean := (rows["AES"].S2FASpeedup + rows["S-W"].S2FASpeedup) / 2
	mlMean := (rows["LR"].S2FASpeedup + rows["SVM"].S2FASpeedup + rows["LLS"].S2FASpeedup) / 3
	if stringMean < 4*mlMean {
		t.Errorf("string/ML separation lost: string=%.1fx ml=%.1fx", stringMean, mlMean)
	}
	if stringMean < 100 {
		t.Errorf("string processing mean %.1fx, expected hundreds", stringMean)
	}

	// The LR gap: the manual stage-split design clearly beats the
	// S2FA-generated one, which is stuck at the II=13 floor (paper §5.2).
	if rows["LR"].ManualSpeedup < 1.5*rows["LR"].S2FASpeedup {
		t.Errorf("LR manual (%.1fx) should clearly beat S2FA (%.1fx)",
			rows["LR"].ManualSpeedup, rows["LR"].S2FASpeedup)
	}

	// Competitive on average (paper: ~85% of manual).
	if r.VsManualPct < 50 || r.VsManualPct > 100 {
		t.Errorf("vs-manual = %.0f%%, outside [50, 100]", r.VsManualPct)
	}
	if r.MeanSpeedup < 10 {
		t.Errorf("geomean speedup %.1fx is implausibly low", r.MeanSpeedup)
	}
}

// TestTable2Shape asserts the Table 2 structure: feasible utilizations
// under the 75% cap, the S-W timing failure, and the memory-bound
// character of AES and PR.
func TestTable2Shape(t *testing.T) {
	s := sharedSuite(t)
	rows, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Table2Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	for app, r := range byApp {
		for name, pct := range map[string]int{"BRAM": r.BRAMPct, "DSP": r.DSPPct, "FF": r.FFPct, "LUT": r.LUTPct} {
			if pct < 0 || pct > 76 {
				t.Errorf("%s %s = %d%%, outside the usable cap", app, name, pct)
			}
		}
		if r.FreqMHz < 60 || r.FreqMHz > 250 {
			t.Errorf("%s frequency %d MHz out of range", app, r.FreqMHz)
		}
	}
	// The paper calls out AES and PR as bandwidth-bound.
	if !byApp["PR"].MemoryBound {
		t.Error("PR should be memory-bandwidth bound")
	}
	// Some kernels miss the 250 MHz target (paper: S-W at 100 MHz).
	below := 0
	for _, r := range rows {
		if r.FreqMHz < 250 {
			below++
		}
	}
	if below == 0 {
		t.Error("no design missed the 250 MHz target; Table 2 expects timing-limited kernels")
	}
}

// TestTable1Shape asserts the design-space magnitudes, including the
// paper's S-W observation (> 1e15 points).
func TestTable1Shape(t *testing.T) {
	s := sharedSuite(t)
	rows, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Cardinality < 1e9 {
			t.Errorf("%s space %.3g is implausibly small", r.App, r.Cardinality)
		}
		if r.LoopFactors < 6 || r.Buffers < 2 {
			t.Errorf("%s factors = %d loops / %d buffers", r.App, r.LoopFactors, r.Buffers)
		}
	}
	for _, r := range rows {
		if r.App == "S-W" && r.Cardinality < 1e15 {
			t.Errorf("S-W cardinality %.3g < 1e15 (paper: more than a thousand trillion)", r.Cardinality)
		}
	}
}

// TestFig3Shape asserts the DSE dynamics: S2FA terminates earlier than
// the vanilla 4-hour budget on average, never produces a worse matched-
// time design on most kernels, and the vanilla tuner matches S2FA on
// KMeans (the paper's exception).
func TestFig3Shape(t *testing.T) {
	s := sharedSuite(t)
	r, err := Fig3(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != len(apps.All()) {
		t.Fatalf("series = %d, want %d", len(r.Series), len(apps.All()))
	}
	if r.AvgTimeSavingPct < 10 {
		t.Errorf("time saving %.1f%% too small (paper: 52.5%%)", r.AvgTimeSavingPct)
	}
	if r.QoRImprovement < 1 {
		t.Errorf("matched-time QoR improvement %.2fx < 1 (paper: 35x)", r.QoRImprovement)
	}
	wins := 0
	for _, series := range r.Series {
		sv, vv := series.NormalizedAt(series.S2FA.TotalMinutes)
		if math.IsNaN(vv) || sv <= vv*1.05 {
			wins++
		}
		// S2FA never runs past the vanilla budget.
		if series.S2FA.TotalMinutes > series.Vanilla.TotalMinutes+1e-9 {
			t.Errorf("%s: S2FA ran longer (%.0f) than vanilla (%.0f)",
				series.App, series.S2FA.TotalMinutes, series.Vanilla.TotalMinutes)
		}
	}
	// Same 75% bar as the original 6-of-8: kernels with small design
	// spaces (KNN, and Conv/Hist among the extended workloads) let the
	// vanilla tuner reach a comparable design inside the budget — the
	// same mechanism as the paper's KMeans exception.
	if wins < (len(r.Series)*3)/4 {
		t.Errorf("S2FA ahead at its stop time on only %d/%d kernels", wins, len(r.Series))
	}
	// KMeans: vanilla eventually reaches a comparable design (paper's
	// exception; its space is relatively small).
	for _, series := range r.Series {
		if series.App != "KMeans" {
			continue
		}
		s2, va := series.S2FA.Best.Objective, series.Vanilla.Best.Objective
		if va > s2*1.25 {
			t.Errorf("KMeans vanilla best %.4g much worse than S2FA %.4g; paper expects parity", va, s2)
		}
	}
}

// TestAblationShape asserts the stopping-criteria study's qualitative
// outcome: the trivial criterion runs longer for little QoR gain.
func TestAblationShape(t *testing.T) {
	s := sharedSuite(t)
	r, err := StoppingAblation(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgTrivialHours < r.AvgEntropyHours {
		t.Errorf("trivial (%.1fh) stopped before entropy (%.1fh); paper expects the long tail",
			r.AvgTrivialHours, r.AvgEntropyHours)
	}
	if r.TrivialQoRGainPct > 40 {
		t.Errorf("trivial criterion gained %.1f%% QoR; paper reports only ~4%%", r.TrivialQoRGainPct)
	}
}

// TestRenderersProduceOutput exercises the text rendering of every
// artifact (what cmd/s2fa-bench prints).
func TestRenderersProduceOutput(t *testing.T) {
	s := sharedSuite(t)
	f3, err := Fig3(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := StoppingAblation(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"fig3":     f3.Render(),
		"fig4":     f4.Render(),
		"table1":   RenderTable1(t1),
		"table2":   RenderTable2(t2),
		"ablation": ab.Render(),
	} {
		if len(out) < 200 {
			t.Errorf("%s render suspiciously short (%d bytes)", name, len(out))
		}
		t.Logf("%s:\n%s", name, out)
	}
}

// TestJVMSecondsScalesLinearly checks the baseline model's task scaling.
func TestJVMSecondsScalesLinearly(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Result("KMeans", Modes{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := JVMSecondsFor(r.App, r.App.Tasks/2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.JVMSeconds / half
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("JVM time ratio for 2x tasks = %.3f, want ~2", ratio)
	}
}

// TestComponentAblationShape asserts each DSE mechanism contributes in
// the direction the paper's §5.2 analysis claims.
func TestComponentAblationShape(t *testing.T) {
	s := sharedSuite(t)
	r, err := ComponentAblation(s, []string{"KMeans", "AES", "S-W"})
	if err != nil {
		t.Fatal(err)
	}
	if r.SeedsMinutesSaved <= 0 {
		t.Errorf("seed generation saved %.1f minutes; expected a clear positive effect", r.SeedsMinutesSaved)
	}
	if r.PartitionHourGain < 1 {
		t.Errorf("partitioning 1-hour gain %.2fx < 1", r.PartitionHourGain)
	}
	if r.StopHoursSaved <= 0 {
		t.Errorf("entropy stop saved %.2f hours; expected positive", r.StopHoursSaved)
	}
	if out := r.Render(); len(out) < 200 {
		t.Errorf("render too short: %d bytes", len(out))
	}
}

// TestShapeHoldsAcrossSeeds reruns the weakest directional invariants on
// two more seeds, guarding against overfitting the defaults to seed 1.
func TestShapeHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{2, 3} {
		s := NewSuite(seed)
		f4, err := Fig4(s)
		if err != nil {
			t.Fatal(err)
		}
		rows := map[string]Fig4Row{}
		for _, row := range f4.Rows {
			rows[row.App] = row
		}
		if rows["AES"].S2FASpeedup < 50 {
			t.Errorf("seed %d: AES speedup %.1fx collapsed", seed, rows["AES"].S2FASpeedup)
		}
		if rows["PR"].S2FASpeedup > 20 {
			t.Errorf("seed %d: PR speedup %.1fx too high", seed, rows["PR"].S2FASpeedup)
		}
		if rows["LR"].ManualSpeedup < rows["LR"].S2FASpeedup {
			t.Errorf("seed %d: LR manual below S2FA", seed)
		}
		f3, err := Fig3(s, []string{"KMeans", "S-W"})
		if err != nil {
			t.Fatal(err)
		}
		for _, series := range f3.Series {
			if series.S2FA.TotalMinutes > series.Vanilla.TotalMinutes+1e-9 {
				t.Errorf("seed %d: %s S2FA ran longer than vanilla", seed, series.App)
			}
		}
	}
}
