// Package exp regenerates every table and figure of the paper's
// evaluation (§5): the DSE trajectory comparison of Fig. 3, the resource
// utilization and frequency table (Table 2), the speedup-over-JVM
// comparison of Fig. 4, the Table 1 design-space summary, and the
// stopping-criteria ablation discussed in §5.2.
package exp

import (
	"math/rand"

	"s2fa/internal/apps"
	"s2fa/internal/jvmsim"
)

// Calibration constants: the few free parameters of the whole performance
// model live here (DESIGN.md "Calibration"). Everything else is derived.
const (
	// JVMSampleTasks is the number of tasks actually interpreted to
	// measure per-task JVM cost; totals scale linearly (workloads are
	// data-independent in instruction count to first order).
	JVMSampleTasks = 24
)

// JVMSecondsFor models the single-threaded Spark executor time for n
// tasks of the app by interpreting a sample batch and scaling.
func JVMSecondsFor(a *apps.App, n int) (float64, error) {
	cls, err := a.Class()
	if err != nil {
		return 0, err
	}
	sample := JVMSampleTasks
	if sample > n {
		sample = n
	}
	rng := rand.New(rand.NewSource(2026))
	tasks := a.Gen(rng, sample)
	vm := jvmsim.New(cls)
	for _, task := range tasks {
		if _, err := vm.Call(task); err != nil {
			return 0, err
		}
	}
	cm := jvmsim.DefaultCostModel()
	perTask := cm.Nanoseconds(vm.Counts) / float64(sample)
	return perTask * float64(n) / 1e9, nil
}
