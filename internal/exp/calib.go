// Package exp regenerates every table and figure of the paper's
// evaluation (§5): the DSE trajectory comparison of Fig. 3, the resource
// utilization and frequency table (Table 2), the speedup-over-JVM
// comparison of Fig. 4, the Table 1 design-space summary, and the
// stopping-criteria ablation discussed in §5.2.
package exp

import (
	"math/rand"

	"s2fa/internal/apps"
	"s2fa/internal/jvmsim"
	"s2fa/internal/obs"
)

// Calibration constants: the few free parameters of the whole performance
// model live here (DESIGN.md "Calibration"). Everything else is derived.
const (
	// JVMSampleTasks is the number of tasks actually executed to measure
	// per-task JVM cost; totals scale linearly (workloads are
	// data-independent in instruction count to first order).
	JVMSampleTasks = 24
)

// JVMSecondsFor models the single-threaded Spark executor time for n
// tasks of the app by executing a sample batch and scaling. It runs the
// closure-compiled engine; the modeled seconds depend only on Counts,
// which the JIT preserves bit-for-bit (the differential property in
// internal/apps), so the value is identical either way.
func JVMSecondsFor(a *apps.App, n int) (float64, error) {
	return JVMSecondsForEngine(a, n, true, nil)
}

// JVMSecondsForEngine is JVMSecondsFor with the execution engine
// explicit (jit=false interprets, the pre-JIT reference path) and an
// optional trace receiving the per-app baseline span and compile
// telemetry.
func JVMSecondsForEngine(a *apps.App, n int, jit bool, tr *obs.Trace) (float64, error) {
	cls, err := a.Class()
	if err != nil {
		return 0, err
	}
	sample := JVMSampleTasks
	if sample > n {
		sample = n
	}
	rng := rand.New(rand.NewSource(2026))
	tasks := a.Gen(rng, sample)
	vm := jvmsim.New(cls)
	if jit {
		sp := tr.Begin("jvm", "jit.compile", obs.Str("app", a.Name))
		err := vm.EnableJIT()
		st, _ := vm.JITStats()
		sp.End(obs.Int("ops", st.Ops), obs.Int("fused", st.Fused))
		if err != nil {
			return 0, err
		}
		tr.Count("jvmsim.jit.compiles", 1)
		tr.Count("jvmsim.jit.fused", int64(st.Fused))
	}
	sp := tr.Begin("jvm", "baseline", obs.Str("app", a.Name),
		obs.Int("tasks", sample), obs.Bool("jit", vm.JITEnabled()))
	_, err = vm.CallBatch(tasks)
	sp.End()
	if err != nil {
		return 0, err
	}
	tr.Count("jvmsim.tasks", int64(sample))
	cm := jvmsim.DefaultCostModel()
	perTask := cm.Nanoseconds(vm.Counts) / float64(sample)
	return perTask * float64(n) / 1e9, nil
}
