package exp

import (
	"fmt"
	"math"
	"strings"

	"s2fa/internal/dse"
	"s2fa/internal/hls"
)

// ComponentRow isolates the contribution of each §4.3 DSE mechanism for
// one kernel, mirroring the paper's per-component reading of Fig. 3:
// seed generation explains the first explored point's quality,
// partitioning the descent rate, and the entropy criterion the
// termination time.
type ComponentRow struct {
	App string

	// Minutes until the first feasible design with and without seed
	// generation (NaN = never found one).
	FirstSeeded, FirstUnseeded float64
	// BestAt60 objective at the 1-hour mark with and without
	// partitioning (both seeded, both entropy-stopped).
	BestAt60Part, BestAt60NoPart float64
	// Minutes to termination with and without the early-stop criterion.
	MinutesStop, MinutesNoStop float64
	// Final objectives of the full flow and each ablated flow.
	BestFull, BestNoSeeds, BestNoPart float64
}

// ComponentAblationResult aggregates the ablation across kernels.
type ComponentAblationResult struct {
	Rows []ComponentRow
	// SeedsMinutesSaved is the mean extra virtual time an unseeded
	// search needs to reach its first feasible design (searches that
	// never find one are charged the full budget).
	SeedsMinutesSaved float64
	// PartitionHourGain is the geometric mean of noPart/part objectives
	// at the 1-hour mark (>1 means partitioning descends faster).
	PartitionHourGain float64
	// StopHoursSaved is the mean termination-time reduction from the
	// entropy criterion, in hours.
	StopHoursSaved float64
}

// ComponentAblation runs the full S2FA flow and three single-mechanism
// ablations per app. It reuses nothing from the Suite cache because the
// ablated configurations are unique to this experiment.
func ComponentAblation(s *Suite, appNames []string) (*ComponentAblationResult, error) {
	if len(appNames) == 0 {
		appNames = AppNames()
	}
	out := &ComponentAblationResult{}
	var seedSaved, partLog float64
	var seedN, partN int
	var stopSaved float64
	for _, name := range appNames {
		r, err := s.Result(name, Modes{})
		if err != nil {
			return nil, err
		}
		run := func(mut func(*dse.Config)) *dse.Outcome {
			eval := dse.NewEvaluator(r.Kernel, r.Space, s.Device, int64(r.App.Tasks), hls.Options{})
			cfg := dse.S2FAConfig(s.Seed)
			cfg.Device = s.Device
			if mut != nil {
				mut(&cfg)
			}
			return dse.Run(r.Kernel, r.Space, eval, cfg)
		}

		full := r.S2FA // already computed by the suite
		noSeeds := run(func(c *dse.Config) { c.Seeded = false })
		noPart := run(func(c *dse.Config) { c.Partition = nil })
		noStop := run(func(c *dse.Config) { c.Stopper = dse.NeverStopper{} })

		row := ComponentRow{
			App:            name,
			FirstSeeded:    full.FirstFeasibleMinutes,
			FirstUnseeded:  noSeeds.FirstFeasibleMinutes,
			BestAt60Part:   full.BestAt(60),
			BestAt60NoPart: noPart.BestAt(60),
			MinutesStop:    full.TotalMinutes,
			MinutesNoStop:  noStop.TotalMinutes,
			BestFull:       full.Best.Objective,
			BestNoSeeds:    noSeeds.Best.Objective,
			BestNoPart:     noPart.Best.Objective,
		}
		out.Rows = append(out.Rows, row)

		seeded, unseeded := row.FirstSeeded, row.FirstUnseeded
		if math.IsNaN(seeded) {
			seeded = 240
		}
		if math.IsNaN(unseeded) {
			unseeded = 240
		}
		seedSaved += unseeded - seeded
		seedN++
		if row.BestAt60Part > 0 && !math.IsInf(row.BestAt60Part, 1) &&
			row.BestAt60NoPart > 0 && !math.IsInf(row.BestAt60NoPart, 1) {
			partLog += math.Log(row.BestAt60NoPart / row.BestAt60Part)
			partN++
		}
		stopSaved += (row.MinutesNoStop - row.MinutesStop) / 60
	}
	if seedN > 0 {
		out.SeedsMinutesSaved = seedSaved / float64(seedN)
	}
	if partN > 0 {
		out.PartitionHourGain = math.Exp(partLog / float64(partN))
	}
	out.StopHoursSaved = stopSaved / float64(len(appNames))
	return out, nil
}

// Render prints the component ablation.
func (c *ComponentAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Component ablation: contribution of each S2FA DSE mechanism (paper §4.3 / §5.2)\n")
	fmt.Fprintf(&b, "%-8s %13s %13s %13s %13s %10s %10s\n",
		"kernel", "feas@(seed)", "feas@(rand)", "1h(part)", "1h(nopart)", "stop(min)", "nostop")
	fm := func(v float64) string {
		if math.IsNaN(v) || math.IsInf(v, 1) {
			return "-"
		}
		return fmt.Sprintf("%.4g", v)
	}
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-8s %13s %13s %13s %13s %10.0f %10.0f\n",
			r.App, fm(r.FirstSeeded), fm(r.FirstUnseeded),
			fm(r.BestAt60Part), fm(r.BestAt60NoPart),
			r.MinutesStop, r.MinutesNoStop)
	}
	fmt.Fprintf(&b, "\nseed generation reaches a feasible design %.0f virtual minutes sooner on average\n", c.SeedsMinutesSaved)
	fmt.Fprintf(&b, "partitioning improves the 1-hour incumbent by %.2fx (geomean)\n", c.PartitionHourGain)
	fmt.Fprintf(&b, "the entropy criterion saves %.1f h of DSE per kernel on average\n", c.StopHoursSaved)
	return b.String()
}
