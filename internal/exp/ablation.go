package exp

import (
	"fmt"
	"math"
	"strings"
)

// AblationRow compares stopping criteria for one kernel.
type AblationRow struct {
	App            string
	EntropyMinutes float64
	TrivialMinutes float64
	EntropyBest    float64
	TrivialBest    float64
}

// AblationResult is the §5.2 stopping-criteria study: the trivial
// "no-improvement-for-10-iterations" criterion versus the Shannon-entropy
// criterion. The paper finds the trivial criterion runs about an hour
// longer (~2.8 h vs ~1.9 h) for only ~4% average QoR gain.
type AblationResult struct {
	Rows []AblationRow
	// AvgEntropyHours / AvgTrivialHours are the mean termination times.
	AvgEntropyHours float64
	AvgTrivialHours float64
	// TrivialQoRGainPct is the average extra quality the longer trivial
	// runs buy (positive = trivial slightly better).
	TrivialQoRGainPct float64
}

// StoppingAblation runs both criteria over the given apps.
func StoppingAblation(s *Suite, appNames []string) (*AblationResult, error) {
	if len(appNames) == 0 {
		appNames = AppNames()
	}
	out := &AblationResult{}
	var entMin, triMin, gain float64
	var gainN int
	for _, name := range appNames {
		r, err := s.Result(name, Modes{Trivial: true})
		if err != nil {
			return nil, err
		}
		row := AblationRow{
			App:            name,
			EntropyMinutes: r.S2FA.TotalMinutes,
			TrivialMinutes: r.Trivial.TotalMinutes,
			EntropyBest:    r.S2FA.Best.Objective,
			TrivialBest:    r.Trivial.Best.Objective,
		}
		out.Rows = append(out.Rows, row)
		entMin += row.EntropyMinutes
		triMin += row.TrivialMinutes
		if row.EntropyBest > 0 && !math.IsInf(row.EntropyBest, 1) &&
			row.TrivialBest > 0 && !math.IsInf(row.TrivialBest, 1) {
			gain += row.EntropyBest/row.TrivialBest - 1
			gainN++
		}
	}
	n := float64(len(appNames))
	out.AvgEntropyHours = entMin / n / 60
	out.AvgTrivialHours = triMin / n / 60
	if gainN > 0 {
		out.TrivialQoRGainPct = gain / float64(gainN) * 100
	}
	return out, nil
}

// Render prints the ablation study.
func (a *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Stopping-criteria ablation (Shannon entropy vs no-improvement-for-10-iterations)\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %14s %14s\n", "kernel", "entropy(min)", "trivial(min)", "entropy best", "trivial best")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-8s %14.0f %14.0f %14.6g %14.6g\n",
			r.App, r.EntropyMinutes, r.TrivialMinutes, r.EntropyBest, r.TrivialBest)
	}
	fmt.Fprintf(&b, "\nentropy stops at %.1f h avg (paper: ~1.9 h); trivial at %.1f h (paper: ~2.8 h); trivial QoR gain %.1f%% (paper: ~4%%)\n",
		a.AvgEntropyHours, a.AvgTrivialHours, a.TrivialQoRGainPct)
	return b.String()
}
