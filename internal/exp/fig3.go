package exp

import (
	"fmt"
	"math"
	"strings"

	"s2fa/internal/dse"
)

// Fig3Series is one sub-figure of Fig. 3: the DSE trajectories of the
// S2FA flow (solid line in the paper) and vanilla OpenTuner (dashed) for
// one kernel, both on eight simulated CPU cores.
type Fig3Series struct {
	App     string
	S2FA    *dse.Outcome
	Vanilla *dse.Outcome
	// Norm is the normalization objective: the first feasible point of
	// the vanilla run's random exploration (the paper normalizes
	// execution cycles to the vanilla random seed). Falls back to the
	// S2FA area seed when vanilla never finds a feasible point.
	Norm float64
}

// NormalizedAt returns (s2fa, vanilla) best-so-far objectives at minute
// t, normalized (lower is better; NaN before a feasible point exists).
func (f *Fig3Series) NormalizedAt(t float64) (float64, float64) {
	s := f.S2FA.BestAt(t) / f.Norm
	v := f.Vanilla.BestAt(t) / f.Norm
	if math.IsInf(s, 1) {
		s = math.NaN()
	}
	if math.IsInf(v, 1) {
		v = math.NaN()
	}
	return s, v
}

// Fig3Result aggregates all sub-figures plus the paper's two headline
// statistics for this experiment.
type Fig3Result struct {
	Series []Fig3Series
	// AvgTimeSavingPct is the average reduction of DSE wall-clock of
	// S2FA vs vanilla (paper: 52.5%).
	AvgTimeSavingPct float64
	// QoRImprovement is the geometric-mean ratio of the vanilla
	// incumbent to the S2FA incumbent at the moment S2FA terminates —
	// i.e. how far ahead S2FA is when it stops (paper: 35x, dominated by
	// kernels vanilla cannot crack in comparable time).
	QoRImprovement float64
}

// Fig3 reproduces Fig. 3 for the given apps (all eight by default).
func Fig3(s *Suite, appNames []string) (*Fig3Result, error) {
	if len(appNames) == 0 {
		appNames = AppNames()
	}
	// With the parallel engine, compute all apps concurrently up front;
	// the loop below then assembles the series from cache in app order,
	// so the result bytes never depend on completion order.
	if err := s.Warm(appNames, Modes{Vanilla: true}); err != nil {
		return nil, err
	}
	out := &Fig3Result{}
	var saving float64
	var qorLog float64
	var qorN int
	for _, name := range appNames {
		r, err := s.Result(name, Modes{Vanilla: true})
		if err != nil {
			return nil, err
		}
		norm := r.Vanilla.FirstFeasible
		if math.IsNaN(norm) || norm <= 0 {
			norm = r.S2FA.FirstFeasible
		}
		if math.IsNaN(norm) || norm <= 0 {
			norm = 1
		}
		out.Series = append(out.Series, Fig3Series{
			App: name, S2FA: r.S2FA, Vanilla: r.Vanilla, Norm: norm,
		})
		saving += 1 - r.S2FA.TotalMinutes/r.Vanilla.TotalMinutes

		s2 := r.S2FA.Best.Objective
		va := r.Vanilla.BestAt(r.S2FA.TotalMinutes)
		if s2 > 0 && !math.IsInf(s2, 1) {
			ratio := va / s2
			if math.IsInf(ratio, 1) {
				// Vanilla had no feasible design yet when S2FA stopped:
				// credit the ratio against the first feasible design the
				// exploration saw (conservative but finite).
				ratio = norm / s2 * 4
			}
			if ratio > 0 && !math.IsNaN(ratio) {
				qorLog += math.Log(ratio)
				qorN++
			}
		}
	}
	out.AvgTimeSavingPct = saving / float64(len(appNames)) * 100
	if qorN > 0 {
		out.QoRImprovement = math.Exp(qorLog / float64(qorN))
	}
	return out, nil
}

// stopTag annotates a stop(min) cell with why the run ended.
func stopTag(o *dse.Outcome) string {
	if o.StopReason == "" {
		return ""
	}
	return fmt.Sprintf(" (%s)", o.StopReason)
}

// Render prints the trajectories as text: one row per time sample with
// the normalized best execution time of both flows.
func (f *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3: DSE trajectories (normalized best vs minutes; S2FA | vanilla OpenTuner)\n")
	samples := []float64{10, 20, 40, 60, 90, 120, 180, 240}
	fmt.Fprintf(&b, "%-8s", "app")
	for _, t := range samples {
		fmt.Fprintf(&b, " %9.0fm", t)
	}
	b.WriteString("   stop(min)\n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-8s", s.App)
		for _, t := range samples {
			sv, _ := s.NormalizedAt(t)
			if math.IsNaN(sv) {
				fmt.Fprintf(&b, " %10s", "-")
			} else {
				fmt.Fprintf(&b, " %10.4f", sv)
			}
		}
		fmt.Fprintf(&b, "   %6.0f%s\n", s.S2FA.TotalMinutes, stopTag(s.S2FA))
		fmt.Fprintf(&b, "%-8s", "  (van)")
		for _, t := range samples {
			_, vv := s.NormalizedAt(t)
			if math.IsNaN(vv) {
				fmt.Fprintf(&b, " %10s", "-")
			} else {
				fmt.Fprintf(&b, " %10.4f", vv)
			}
		}
		fmt.Fprintf(&b, "   %6.0f%s\n", s.Vanilla.TotalMinutes, stopTag(s.Vanilla))
		if s.S2FA.StaticallyPruned > 0 || s.S2FA.PrunedDomainValues > 0 {
			fmt.Fprintf(&b, "%-8s  lint: %d proposals statically pruned, %d domain values provably illegal\n",
				"", s.S2FA.StaticallyPruned, s.S2FA.PrunedDomainValues)
		}
		if s.S2FA.RangeCollapsed > 0 || s.S2FA.RangeRestrictedValues > 0 {
			fmt.Fprintf(&b, "%-8s  absint: %d evaluations collapsed onto width-equivalent designs, %d bit-width values dominated\n",
				"", s.S2FA.RangeCollapsed, s.S2FA.RangeRestrictedValues)
		}
		if s.S2FA.DependPruned > 0 {
			fmt.Fprintf(&b, "%-8s  depend: %d evaluations served from dependence-equivalent designs (serial lanes collapse to parallel=1)\n",
				"", s.S2FA.DependPruned)
		}
		if s.S2FA.AccessPruned > 0 {
			fmt.Fprintf(&b, "%-8s  access: %d evaluations served from port-cap-equivalent designs (starved lanes collapse to the cap)\n",
				"", s.S2FA.AccessPruned)
		}
	}
	pruned, domain, collapsed, dominated, depPruned, accPruned := 0, 0, 0, 0, 0, 0
	for _, s := range f.Series {
		pruned += s.S2FA.StaticallyPruned
		domain += s.S2FA.PrunedDomainValues
		collapsed += s.S2FA.RangeCollapsed
		dominated += s.S2FA.RangeRestrictedValues
		depPruned += s.S2FA.DependPruned
		accPruned += s.S2FA.AccessPruned
	}
	fmt.Fprintf(&b, "\nS2FA saves %.1f%% DSE time on average (paper: 52.5%%) and reaches %.1fx better designs (paper: 35x)\n",
		f.AvgTimeSavingPct, f.QoRImprovement)
	if pruned > 0 || domain > 0 {
		fmt.Fprintf(&b, "static verifier pruned %d proposed points before HLS estimation (%d parameter-domain values provably illegal)\n",
			pruned, domain)
	}
	if collapsed > 0 || dominated > 0 {
		fmt.Fprintf(&b, "abstract interpreter collapsed %d evaluations onto width-equivalent designs (%d bit-width domain values dominated)\n",
			collapsed, dominated)
	}
	if depPruned > 0 {
		fmt.Fprintf(&b, "dependence analysis served %d evaluations from equivalent designs (unpipelined serializing lanes are a hardware no-op)\n",
			depPruned)
	}
	if accPruned > 0 {
		fmt.Fprintf(&b, "access analysis served %d evaluations from equivalent designs (lanes past the BRAM port cap buy no hardware)\n",
			accPruned)
	}
	return b.String()
}
