package exp

import (
	"fmt"
	"strings"

	"s2fa/internal/space"
)

// Table2Row is one row of the paper's Table 2: resource utilization and
// achieved clock frequency of the best DSE-generated design per kernel.
type Table2Row struct {
	App     string
	Type    string
	BRAMPct int
	DSPPct  int
	FFPct   int
	LUTPct  int
	FreqMHz int
	// MemoryBound marks kernels whose best design is limited by external
	// memory bandwidth (the paper calls out AES and PR).
	MemoryBound bool
}

// Table2 regenerates Table 2 from the S2FA DSE's best configurations.
func Table2(s *Suite) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range AppNames() {
		r, err := s.Result(name, Modes{})
		if err != nil {
			return nil, err
		}
		rep := r.BestReport
		memBound := float64(rep.Cycles) <= 1.05*float64(rep.BytesPerTask)*float64(r.App.Tasks)/float64(s.Device.DDRBytesPerCycle)
		rows = append(rows, Table2Row{
			App:         name,
			Type:        r.App.Type,
			BRAMPct:     int(rep.UtilBRAM*100 + 0.5),
			DSPPct:      int(rep.UtilDSP*100 + 0.5),
			FFPct:       int(rep.UtilFF*100 + 0.5),
			LUTPct:      int(rep.UtilLUT*100 + 0.5),
			FreqMHz:     int(rep.FreqMHz + 0.5),
			MemoryBound: memBound,
		})
	}
	return rows, nil
}

// RenderTable2 prints the table in the paper's format.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: resource utilization and clock frequency (MHz) of best DSE designs\n")
	fmt.Fprintf(&b, "%-8s %-14s %6s %6s %6s %6s %6s  %s\n", "kernel", "type", "BRAM", "DSP", "FF", "LUT", "freq", "note")
	for _, r := range rows {
		note := ""
		if r.MemoryBound {
			note = "memory-bandwidth bound"
		}
		fmt.Fprintf(&b, "%-8s %-14s %5d%% %5d%% %5d%% %5d%% %6d  %s\n",
			r.App, r.Type, r.BRAMPct, r.DSPPct, r.FFPct, r.LUTPct, r.FreqMHz, note)
	}
	return b.String()
}

// Table1Row summarizes the identified design space of one kernel, the
// content of the paper's Table 1 instantiated per application.
type Table1Row struct {
	App         string
	LoopFactors int // tiling+parallel+pipeline parameters
	Buffers     int // bit-width parameters
	Cardinality float64
}

// Table1 regenerates the design-space summary. The paper highlights that
// the S-W space exceeds a thousand trillion (1e15) points.
func Table1(s *Suite) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range AppNames() {
		r, err := s.Result(name, Modes{})
		if err != nil {
			return nil, err
		}
		row := Table1Row{App: name, Cardinality: r.Space.Cardinality()}
		for i := range r.Space.Params {
			if r.Space.Params[i].Kind == space.FactorBitWidth {
				row.Buffers++
			} else {
				row.LoopFactors++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 prints the design-space summary.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 (instantiated): identified design spaces\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %14s\n", "kernel", "loop factors", "buffer widths", "design points")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12d %12d %14.3g\n", r.App, r.LoopFactors, r.Buffers, r.Cardinality)
	}
	b.WriteString("(factors per Table 1: bit-width 2^n in (8,512]; tile/parallel in [1, TC); pipeline {off,on,flatten})\n")
	return b.String()
}
