package lint_test

import (
	"math/rand"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/fpga"
	"s2fa/internal/hls"
	"s2fa/internal/lint"
	"s2fa/internal/merlin"
	"s2fa/internal/space"
)

// TestLintErrorsShadowDynamicRejection enforces the severity contract the
// DSE pruner depends on: every design point the verifier rejects with an
// error must also be rejected dynamically — merlin.Annotate fails, or HLS
// estimation reports the point infeasible. If lint errors on a point the
// toolchain would happily build, pruning would silently discard feasible
// designs (a false positive), which is the one failure mode the verifier
// must never have.
//
// Points are drawn per app: seeded random samples, plus a forced
// pipeline=flatten variant per loop (flatten legality is the rule with
// real structure behind it — S-W's while-loop traceback).
func TestLintErrorsShadowDynamicRejection(t *testing.T) {
	const samplesPerApp = 60
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			k, err := a.Kernel()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			sp := space.Identify(k)
			chk := lint.NewChecker(k)
			rng := rand.New(rand.NewSource(42))

			var pts []space.Point
			for i := 0; i < samplesPerApp; i++ {
				pts = append(pts, sp.RandomPoint(rng))
			}
			// Force flatten onto each loop in turn, on top of a random
			// point, so flatten legality is exercised for every nest.
			for i := range sp.Params {
				p := &sp.Params[i]
				if p.Kind != space.FactorPipeline {
					continue
				}
				pt := sp.RandomPoint(rng)
				pt[p.Name] = space.PipeFlattenVal
				pts = append(pts, pt)
			}

			// Out-of-domain variants: oversized parallel factors and a
			// non-power-of-two bit-width. These never come from the DSE
			// (the space clamps its domains) but the -lint CLI and manual
			// directive files can produce them, and they must hit the
			// same wall at annotation time.
			for i := range sp.Params {
				p := &sp.Params[i]
				pt := sp.RandomPoint(rng)
				switch p.Kind {
				case space.FactorParallel:
					pt[p.Name] = p.Max * 2
				case space.FactorBitWidth:
					pt[p.Name] = 48
				default:
					continue
				}
				pts = append(pts, pt)
			}

			lintRejected, dynChecked := 0, 0
			for _, pt := range pts {
				d := sp.Directives(pt)
				fs := chk.Directives(d.Loops, d.BitWidths)
				if !fs.HasErrors() {
					continue
				}
				lintRejected++
				ann, err := merlin.Annotate(k, d)
				if err != nil {
					continue // rejected at annotation: contract holds
				}
				dynChecked++
				rep := hls.Estimate(ann, fpga.VU9P(), int64(a.Tasks), hls.Options{})
				if rep.Feasible {
					t.Errorf("false positive: lint rejects point but Annotate and HLS both accept it\npoint: %v\nfindings:\n%s",
						pt, fs.Errors())
				}
			}
			t.Logf("%s: %d/%d points lint-rejected (%d survived to HLS check)",
				a.Name, lintRejected, len(pts), dynChecked)
		})
	}
}
