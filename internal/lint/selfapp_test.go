// Self-application: the verifier runs over every built-in workload at
// three pipeline stages and must report zero errors everywhere (the
// generated code and the expert manual designs are all known-good). The
// complete findings output — including warnings — is pinned to a golden
// file so any drift in the warning set shows up in review.
//
// External test package: importing apps would otherwise create the cycle
// lint -> ... <- b2c <- apps.
package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s2fa/internal/apps"
	"s2fa/internal/lint"
	"s2fa/internal/merlin"
)

var update = flag.Bool("update", false, "rewrite the self-application golden file")

func TestSelfApplication(t *testing.T) {
	var b strings.Builder
	for _, a := range apps.All() {
		k, err := a.Kernel()
		if err != nil {
			t.Fatalf("%s: compile: %v", a.Name, err)
		}
		record(t, &b, a.Name, "generated", lint.Lint(k))

		loops, bw := a.Manual.Directives(k)
		d := merlin.Directives{Loops: loops, BitWidths: bw}
		ann, err := merlin.Annotate(k, d)
		if err != nil {
			t.Fatalf("%s: annotate manual design: %v", a.Name, err)
		}
		record(t, &b, a.Name, "manual-annotated", lint.Lint(ann))

		mat, err := merlin.Materialize(k, d)
		if err != nil {
			t.Fatalf("%s: materialize manual design: %v", a.Name, err)
		}
		record(t, &b, a.Name, "manual-materialized", lint.PostTransform(mat))
	}

	golden := filepath.Join("testdata", "selfapp.golden")
	got := b.String()
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("lint self-application drifted from golden file %s (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

func record(t *testing.T, b *strings.Builder, app, stage string, fs lint.Findings) {
	t.Helper()
	if fs.HasErrors() {
		t.Errorf("%s %s: unexpected lint errors:\n%s", app, stage, fs.Errors())
	}
	fmt.Fprintf(b, "== %s %s\n%s\n", app, stage, fs)
}
