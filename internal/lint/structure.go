package lint

import (
	"fmt"

	"s2fa/internal/cir"
)

// Pass 5: post-transform structural invariants.
//
// The Merlin materialization transforms rewrite the AST aggressively —
// unrolling duplicates bodies under lane renaming, tiling splits loops,
// flatten splices sub-loop copies inline. This pass checks the invariants
// those rewrites must preserve: loop IDs stay unique (the design space
// addresses loops by ID), local names stay unique within their scope
// (unroll renaming must not collide), induction variables are never
// written by the body, steps are positive, and the kernel's declared task
// loop exists. It runs after every transform in the self-application
// tests and inside the b2c gate.

type structChecker struct {
	k        *cir.Kernel
	findings Findings
}

// CheckStructure runs pass 5 over the kernel.
func CheckStructure(k *cir.Kernel) Findings {
	c := &structChecker{k: k}

	seenID := map[string]bool{}
	for _, l := range k.Loops() {
		if seenID[l.ID] {
			c.add(RuleDupLoopID, SevError, l.ID, "",
				fmt.Sprintf("loop ID %q appears more than once; the design space addresses loops by ID", l.ID))
		}
		seenID[l.ID] = true
		if l.Step <= 0 {
			c.add(RuleBadStep, SevError, l.ID, "",
				fmt.Sprintf("non-positive step %d (canonical counted loops require step >= 1)", l.Step))
		}
		if n := writesTo(l.Body, l.Var); n > 0 {
			c.add(RuleLoopVarWrite, SevError, l.ID, l.Var,
				fmt.Sprintf("loop body writes its own induction variable %q (%d stores)", l.Var, n))
		}
	}
	if k.TaskLoopID != "" && k.FindLoop(k.TaskLoopID) == nil {
		c.add(RuleMissingTask, SevError, k.TaskLoopID, "",
			fmt.Sprintf("declared task loop %q does not exist in the body", k.TaskLoopID))
	}

	outer := map[string]bool{"N": true}
	for _, p := range c.k.Params {
		outer[p.Name] = true
	}
	for _, g := range c.k.Globals {
		outer[g.Name] = true
	}
	c.scope(k.Body, outer, "")

	c.findings.Sort()
	return c.findings
}

func (c *structChecker) add(rule string, sev Severity, loopID, where, detail string) {
	c.findings = append(c.findings, Finding{
		Rule: rule, Sev: sev, Kernel: c.k.Name, LoopID: loopID, Where: where, Detail: detail,
	})
}

// scope checks name uniqueness: a re-declaration in the same block is an
// error (the generated C would not compile — the exact bug class unroll
// renaming exists to prevent); shadowing an outer name is a warning.
func (c *structChecker) scope(b cir.Block, visible map[string]bool, loopID string) {
	local := map[string]bool{}
	declare := func(name string) {
		switch {
		case local[name]:
			c.add(RuleDupLocal, SevError, loopID, name,
				fmt.Sprintf("%q declared twice in the same scope (unroll lane renaming collision?)", name))
		case visible[name]:
			c.add(RuleShadowedLocal, SevWarn, loopID, name,
				fmt.Sprintf("%q shadows a declaration from an enclosing scope", name))
		}
		local[name] = true
	}
	inner := func() map[string]bool {
		m := make(map[string]bool, len(visible)+len(local))
		for k := range visible {
			m[k] = true
		}
		for k := range local {
			m[k] = true
		}
		return m
	}
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Decl:
			declare(s.Name)
		case *cir.ArrDecl:
			declare(s.Name)
		case *cir.If:
			c.scope(s.Then, inner(), loopID)
			c.scope(s.Else, inner(), loopID)
		case *cir.Loop:
			vis := inner()
			if vis[s.Var] {
				c.add(RuleShadowedLocal, SevWarn, s.ID, s.Var,
					fmt.Sprintf("induction variable %q shadows a declaration from an enclosing scope", s.Var))
			}
			vis[s.Var] = true
			c.scope(s.Body, vis, s.ID)
		case *cir.While:
			c.scope(s.Body, inner(), loopID)
		}
	}
}

// writesTo counts assignments targeting the named scalar in a block.
func writesTo(b cir.Block, name string) int {
	n := 0
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Assign:
			if vr, ok := s.LHS.(*cir.VarRef); ok && vr.Name == name {
				n++
			}
		case *cir.If:
			n += writesTo(s.Then, name)
			n += writesTo(s.Else, name)
		case *cir.Loop:
			if s.Var == name {
				continue // inner loop rebinds the name
			}
			n += writesTo(s.Body, name)
		case *cir.While:
			n += writesTo(s.Body, name)
		}
	}
	return n
}
