package lint

import (
	"fmt"
	"sort"

	"s2fa/internal/cir"
)

// Pass 4: transform/pragma legality.
//
// Directives checks a complete directive set (per-loop options + buffer
// bit-widths — the same shape a design point lowers to) against the
// cached kernel analysis and reports:
//
//	error  unknown-loop / unknown-param    directive targets nothing
//	error  illegal-factor                  negative, or factor > trip count
//	warn   factor-eq-trip                  factor == trip (legal full unroll)
//	error  flatten-variable-trip           a sub-loop has no constant trip
//	warn   flatten-carried                 a sub-loop carries a non-reduction dependence
//	warn   flatten-leaf                    flatten on a loop with no sub-loops
//	error  illegal-bitwidth                outside (8,512] or not a power of two,
//	                                       or targeting a scalar parameter
//	warn   bitwidth-narrowing              below the element's natural width
//	warn   parallel-race                   pass 3 result for the requested factors
//
// The error set is deliberately the exact static shadow of the dynamic
// rejection paths (merlin.Annotate validation + the HLS estimator's
// flatten infeasibility): the DSE may prune on errors without ever
// discarding a design the pipeline would have accepted.
func (c *Checker) Directives(loops map[string]cir.LoopOpt, bws map[string]int) Findings {
	var fs Findings
	ids := make([]string, 0, len(loops))
	for id := range loops {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		opt := loops[id]
		li := c.info.ByID[id]
		if li == nil {
			fs = append(fs, Finding{
				Rule: RuleUnknownLoop, Sev: SevError, Kernel: c.k.Name, LoopID: id,
				Detail: "directive targets a loop the kernel does not contain",
			})
			continue
		}
		fs = append(fs, c.checkFactor(li, "tile", opt.Tile)...)
		fs = append(fs, c.checkFactor(li, "parallel", opt.Parallel)...)
		if opt.Parallel > 1 {
			if d, ok := c.race[id]; ok {
				fs = append(fs, Finding{
					Rule: RuleParallelRace, Sev: SevWarn, Kernel: c.k.Name, LoopID: id,
					Detail: fmt.Sprintf("parallel %d lanes race: %s (lanes serialize; no speedup unless wavefront)", opt.Parallel, d),
				})
			}
		}
		if opt.Pipeline == cir.PipeFlatten {
			fs = append(fs, c.checkFlatten(li)...)
		}
	}
	names := make([]string, 0, len(bws))
	for name := range bws {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fs = append(fs, c.checkBitWidth(name, bws[name])...)
	}
	fs.Sort()
	return fs
}

func (c *Checker) checkFactor(li *cir.LoopInfo, kind string, f int) Findings {
	if f < 0 {
		return Findings{{
			Rule: RuleIllegalFactor, Sev: SevError, Kernel: c.k.Name, LoopID: li.Loop.ID,
			Detail: fmt.Sprintf("negative %s factor %d", kind, f),
		}}
	}
	if li.Trip <= 0 || f <= 1 {
		return nil
	}
	if int64(f) > li.Trip {
		return Findings{{
			Rule: RuleIllegalFactor, Sev: SevError, Kernel: c.k.Name, LoopID: li.Loop.ID,
			Detail: fmt.Sprintf("%s factor %d exceeds trip count %d", kind, f, li.Trip),
		}}
	}
	if int64(f) == li.Trip {
		return Findings{{
			Rule: RuleFactorEqTrip, Sev: SevWarn, Kernel: c.k.Name, LoopID: li.Loop.ID,
			Detail: fmt.Sprintf("%s factor %d equals the trip count (degenerates to a full unroll)", kind, f),
		}}
	}
	return nil
}

func (c *Checker) checkFlatten(li *cir.LoopInfo) Findings {
	id := li.Loop.ID
	if d, ok := c.flattenVarTrip[id]; ok {
		return Findings{{
			Rule: RuleFlattenVarTrip, Sev: SevError, Kernel: c.k.Name, LoopID: id,
			Detail: fmt.Sprintf("pipeline flatten requires fully unrolling all sub-loops, but %s", d),
		}}
	}
	var fs Findings
	if d, ok := c.flattenCarried[id]; ok {
		fs = append(fs, Finding{
			Rule: RuleFlattenCarried, Sev: SevWarn, Kernel: c.k.Name, LoopID: id,
			Detail: fmt.Sprintf("flatten unrolls a dependence chain serially: %s", d),
		})
	}
	if len(li.Children) == 0 {
		fs = append(fs, Finding{
			Rule: RuleFlattenLeaf, Sev: SevWarn, Kernel: c.k.Name, LoopID: id,
			Detail: "flatten on a leaf loop has no sub-loops to unroll (plain pipelining)",
		})
	}
	return fs
}

func (c *Checker) checkBitWidth(name string, bw int) Findings {
	p := c.k.Param(name)
	if p == nil {
		return Findings{{
			Rule: RuleUnknownParam, Sev: SevError, Kernel: c.k.Name, Where: name,
			Detail: "bit-width directive targets a parameter the kernel does not declare",
		}}
	}
	if !p.IsArray {
		return Findings{{
			Rule: RuleIllegalWidth, Sev: SevError, Kernel: c.k.Name, Where: name,
			Detail: "bit-width directive on a scalar parameter (only array buffers have an interface width)",
		}}
	}
	if bw < 8 || bw > 512 || bw&(bw-1) != 0 {
		return Findings{{
			Rule: RuleIllegalWidth, Sev: SevError, Kernel: c.k.Name, Where: name,
			Detail: fmt.Sprintf("bit-width %d outside the legal set {2^n : 8 < 2^n <= 512}", bw),
		}}
	}
	if eb := p.Elem.Bits(); bw < eb {
		return Findings{{
			Rule: RuleNarrowWidth, Sev: SevWarn, Kernel: c.k.Name, Where: name,
			Detail: fmt.Sprintf("interface width %d is below the %d-bit element value range (sub-element packing)", bw, eb),
		}}
	}
	return nil
}
