package lint

import (
	"fmt"

	"s2fa/internal/access"
	"s2fa/internal/cir"
)

// checkAccess is pass 6: the access-pattern advisory. A subscript that
// transitively depends on loaded data (a gather/scatter) defeats
// Merlin's burst inference — the buffer pays per-element DDR latency no
// matter how the loops are annotated — so every such site is flagged
// with its kdsl source position. Advisory only: gathers are legal and
// HLS schedules them, they just cap the memory system, so the severity
// contract keeps these at Warn.
func checkAccess(k *cir.Kernel) Findings {
	acc := access.Analyze(k)
	var fs Findings
	seen := map[string]bool{}
	for _, s := range acc.Sites {
		if !s.DataDep {
			continue
		}
		key := s.Array + "@" + s.Pos.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		verb := "read"
		if s.Write {
			verb = "written"
		}
		where := ""
		if s.Pos.Valid() {
			where = s.Pos.String()
		}
		fs = append(fs, Finding{
			Rule:   RuleGatherAccess,
			Sev:    SevWarn,
			Kernel: k.Name,
			LoopID: s.InnerLoop,
			Where:  where,
			Detail: fmt.Sprintf(
				"%s %q %s through a data-dependent subscript (gather/scatter): "+
					"no burst engine can stage it, each access pays full DDR latency",
				s.Kind, s.Array, verb),
		})
	}
	return fs
}
