package lint

import (
	"testing"

	"s2fa/internal/cir"
)

// Tests for the value-range fact consumption in the bounds pass: loads
// from buffers with proven element ranges (cir.Param.ValKnown, seeded by
// b2c from the abstract interpreter) become checkable subscripts, and
// branch-condition refinement keeps guarded accesses from false-warning.

func inArrRange(name string, n int, lo, hi float64) cir.Param {
	p := inArr(name, n)
	p.ValKnown, p.ValLo, p.ValHi = true, lo, hi
	return p
}

func idx(arr string, i cir.Expr) *cir.Index {
	return &cir.Index{K: cir.Int, Arr: arr, Idx: i}
}

func cmp(op cir.BinOp, l, r cir.Expr) *cir.Binary {
	return &cir.Binary{K: cir.Int, Op: op, L: l, R: r}
}

// gatherKernel builds `for i: x = in(i); [if (guard) ] out(x) = 1` with
// the input's element range proven to be [lo, hi].
func gatherKernel(lo, hi float64, guarded bool) *cir.Kernel {
	store := cir.Stmt(&cir.Assign{LHS: idx("out", ref("x")), RHS: intLit(1)})
	if guarded {
		store = &cir.If{
			Cond: cmp(cir.LAnd, cmp(cir.Ge, ref("x"), intLit(0)), cmp(cir.Lt, ref("x"), intLit(8))),
			Then: cir.Block{store},
		}
	}
	return kern(cir.Block{
		counted("L1", "i", 8, cir.Block{
			&cir.Decl{Name: "x", K: cir.Int, Init: idx("in", ref("i"))},
			store,
		}),
	}, inArrRange("in", 8, lo, hi), outArr("out", 8))
}

func boundsFindings(k *cir.Kernel) Findings {
	return Lint(k).ByRule(RuleArrayBounds)
}

func TestFactRangeGuardedGatherIsClean(t *testing.T) {
	// x is proven within [-128, 127]; the guard narrows it to [0, 7], so
	// the store is in bounds and the pass must stay silent. Before branch
	// refinement the fact range alone would have produced a false "may
	// leave [0, 8)" warning here.
	if fs := boundsFindings(gatherKernel(-128, 127, true)); len(fs) != 0 {
		t.Errorf("guarded gather reported:\n%s", fs)
	}
}

func TestFactRangeUnguardedGatherWarns(t *testing.T) {
	fs := boundsFindings(gatherKernel(-128, 127, false))
	if len(fs) != 1 || fs[0].Sev != SevWarn {
		t.Fatalf("unguarded gather findings:\n%s", fs)
	}
}

func TestFactRangeProvenInBounds(t *testing.T) {
	// The element range itself fits the target: no guard needed.
	if fs := boundsFindings(gatherKernel(0, 7, false)); len(fs) != 0 {
		t.Errorf("proven-in-bounds gather reported:\n%s", fs)
	}
}

func TestFactRangeProvenOutOfBounds(t *testing.T) {
	fs := boundsFindings(gatherKernel(100, 200, false))
	if len(fs) != 1 || fs[0].Sev != SevError {
		t.Fatalf("proven-out-of-bounds gather findings:\n%s", fs)
	}
}

func TestFactRangeUnknownBufferStillSkipped(t *testing.T) {
	// Without facts the subscript interval is unknown: skipped, exactly
	// the pre-facts behavior.
	k := kern(cir.Block{
		counted("L1", "i", 8, cir.Block{
			&cir.Decl{Name: "x", K: cir.Int, Init: idx("in", ref("i"))},
			&cir.Assign{LHS: idx("out", ref("x")), RHS: intLit(1)},
		}),
	}, inArr("in", 8), outArr("out", 8))
	if fs := boundsFindings(k); len(fs) != 0 {
		t.Errorf("fact-free gather reported:\n%s", fs)
	}
}

func TestGlobalTableRangeChecked(t *testing.T) {
	table := func(vals ...int64) cir.Global {
		g := cir.Global{Name: "tbl", Elem: cir.Int}
		for _, v := range vals {
			g.Data = append(g.Data, cir.IntVal(cir.Int, v))
		}
		return g
	}
	build := func(g cir.Global) *cir.Kernel {
		k := kern(cir.Block{
			counted("L1", "i", 4, cir.Block{
				&cir.Assign{LHS: idx("out", idx("tbl", ref("i"))), RHS: intLit(1)},
			}),
		}, outArr("out", 8))
		k.Globals = []cir.Global{g}
		return k
	}
	// Constant lookup tables carry exact element ranges.
	if fs := boundsFindings(build(table(0, 3, 5, 7))); len(fs) != 0 {
		t.Errorf("in-range table lookup reported:\n%s", fs)
	}
	fs := boundsFindings(build(table(0, 3, 5, 9)))
	if len(fs) != 1 || fs[0].Sev != SevWarn {
		t.Fatalf("out-of-range table lookup findings:\n%s", fs)
	}
}
