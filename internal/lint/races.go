package lint

import (
	"fmt"
	"strings"

	"s2fa/internal/cir"
	"s2fa/internal/depend"
)

// Pass 3: parallel-safety race detection.
//
// A parallel (unroll) directive duplicates the loop body across lanes. If
// the loop carries a dependence across iterations that is not a
// recognized reduction form, the lanes contend on shared state: the
// transformation is still semantics-preserving (Merlin serializes the
// chain), but the requested hardware parallelism is a lie. The HLS
// estimator models exactly this by serializing carried lanes, so the
// design stays *feasible* — which is why race findings are warnings, not
// errors: pruning them would discard legal (if wasteful, or — for
// wavefront codes like Smith-Waterman — even profitable) designs.
//
// The pass is a shadow of the exact dependence verdicts in
// internal/depend: EffectiveRace supplies the carried arrays (with the
// reduce-output exemption applied) and ScalarSeq the non-reducible scalar
// recurrences. The depend apps-agreement test pins these to cir's
// conservative heuristic on every workload, which keeps the warning text
// byte-identical to the pre-verdict implementation.

// ReductionForm recognizes the canonical additive reduction body. It is
// the shared legality predicate behind merlin's tree-reduction transform
// and the lint race detector; the implementation lives in
// internal/depend.
func ReductionForm(l *cir.Loop) (acc string, addend cir.Expr, ok bool) {
	return depend.ReductionForm(l)
}

// StmtMentions counts occurrences of the named scalar in a statement
// (reads and writes alike). Delegates to internal/depend.
func StmtMentions(s cir.Stmt, name string) int {
	return depend.StmtMentions(s, name)
}

// raceDetail describes the loop's carried dependence that is not covered
// by the reduction transform, or "" when parallel lanes are
// race-free/reducible, reading straight off the dependence verdicts.
func raceDetail(dep *depend.Analysis, id string) string {
	v := dep.Verdict(id)
	if v == nil {
		return ""
	}
	var parts []string
	if eff := dep.EffectiveRace(id); len(eff) > 0 {
		parts = append(parts, fmt.Sprintf("carried array dependence through %s", strings.Join(eff, ", ")))
	}
	if len(v.ScalarSeq) > 0 {
		parts = append(parts, fmt.Sprintf("scalar recurrence on %s not in reduction form", strings.Join(v.ScalarSeq, ", ")))
	}
	return strings.Join(parts, "; ")
}
