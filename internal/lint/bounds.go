package lint

import (
	"fmt"

	"s2fa/internal/cir"
)

// Pass 2: array bounds via interval analysis.
//
// Every counted loop contributes a value interval for its induction
// variable (computed from the interval of its bounds, honoring the step);
// array subscripts are then evaluated in interval arithmetic. A subscript
// whose entire interval falls outside [0, len) is a provable
// out-of-bounds access — an error (the generated hardware would read
// garbage; the differential tests would catch it dynamically, this pass
// catches it statically). A partial overlap is a warning. Subscripts
// involving runtime quantities (the task index against the batch size N,
// data-dependent indices) have unknown intervals and are skipped: the
// paper's §3.3 restrictions make the common kernel indices affine in loop
// variables, so this covers the cases that matter.
//
// The pass additionally consumes the abstract interpreter's value-range
// facts riding on the kernel interface (cir.Param.ValLo/ValHi, seeded by
// internal/b2c from internal/absint): a load from a proven-range buffer
// evaluates to that range instead of unknown, which makes data-dependent
// subscripts (table lookups, gather indices) checkable. To keep those
// checks from false-warning on guarded accesses, branch conditions
// refine scalar intervals on each arm — `if (x < n) out(x) = ...` with x
// proven non-negative reports nothing, while the same store unguarded
// keeps its warning.

// interval is a conservative value range; ok=false means unknown.
type interval struct {
	lo, hi int64
	ok     bool
}

func known(lo, hi int64) interval { return interval{lo: lo, hi: hi, ok: true} }

var unknown = interval{}

// inRange guards interval arithmetic against int64 overflow: operands
// are only combined while both bounds stay within +-2^31, so sums and
// four-way products fit comfortably in int64. Subscript math lives far
// inside this window; anything bigger degrades to unknown.
func inRange(iv interval) bool {
	return iv.lo >= -maxSeedMagnitude && iv.hi <= maxSeedMagnitude
}

func evalInterval(e cir.Expr, env map[string]interval) interval {
	switch e := e.(type) {
	case *cir.IntLit:
		return known(e.Val, e.Val)
	case *cir.VarRef:
		if iv, ok := env[e.Name]; ok {
			return iv
		}
		return unknown
	case *cir.Index:
		// Element-range facts are stored under the reserved "name[]" key
		// (variable names cannot contain brackets).
		if iv, ok := env[e.Arr+"[]"]; ok {
			return iv
		}
		return unknown
	case *cir.Unary:
		x := evalInterval(e.X, env)
		if e.Op == cir.Neg && x.ok {
			return known(-x.hi, -x.lo)
		}
		return unknown
	case *cir.Cast:
		x := evalInterval(e.X, env)
		if !x.ok || !e.To.IsInteger() {
			return unknown
		}
		// Truncating casts can wrap; only pass intervals that provably
		// fit the target width.
		bits := e.To.Bits()
		if bits >= 64 {
			return x
		}
		max := int64(1)<<(bits-1) - 1
		min := -(int64(1) << (bits - 1))
		if x.lo >= min && x.hi <= max {
			return x
		}
		return unknown
	case *cir.Cond:
		t := evalInterval(e.T, env)
		f := evalInterval(e.F, env)
		if t.ok && f.ok {
			return known(min64(t.lo, f.lo), max64(t.hi, f.hi))
		}
		return unknown
	case *cir.Call:
		return callInterval(e, env)
	case *cir.Binary:
		return binaryInterval(e, env)
	}
	return unknown
}

func callInterval(e *cir.Call, env map[string]interval) interval {
	args := make([]interval, len(e.Args))
	for i, a := range e.Args {
		args[i] = evalInterval(a, env)
	}
	switch e.Name {
	case "min":
		if len(args) == 2 && args[0].ok && args[1].ok {
			return known(min64(args[0].lo, args[1].lo), min64(args[0].hi, args[1].hi))
		}
	case "max":
		if len(args) == 2 && args[0].ok && args[1].ok {
			return known(max64(args[0].lo, args[1].lo), max64(args[0].hi, args[1].hi))
		}
	case "abs":
		if len(args) == 1 && args[0].ok {
			x := args[0]
			if x.lo >= 0 {
				return x
			}
			return known(0, max64(-x.lo, x.hi))
		}
	}
	return unknown
}

func binaryInterval(e *cir.Binary, env map[string]interval) interval {
	l := evalInterval(e.L, env)
	r := evalInterval(e.R, env)
	switch e.Op {
	case cir.Add:
		if l.ok && r.ok && inRange(l) && inRange(r) {
			return known(l.lo+r.lo, l.hi+r.hi)
		}
	case cir.Sub:
		if l.ok && r.ok && inRange(l) && inRange(r) {
			return known(l.lo-r.hi, l.hi-r.lo)
		}
	case cir.Mul:
		if l.ok && r.ok && inRange(l) && inRange(r) {
			a, b, c, d := l.lo*r.lo, l.lo*r.hi, l.hi*r.lo, l.hi*r.hi
			return known(min64(min64(a, b), min64(c, d)), max64(max64(a, b), max64(c, d)))
		}
	case cir.Shl:
		if lit, isLit := e.R.(*cir.IntLit); isLit && l.ok && inRange(l) && lit.Val >= 0 && lit.Val < 31 {
			f := int64(1) << uint(lit.Val)
			return known(l.lo*f, l.hi*f)
		}
	case cir.Shr:
		if lit, isLit := e.R.(*cir.IntLit); isLit && l.ok && l.lo >= 0 && lit.Val >= 0 && lit.Val < 63 {
			return known(l.lo>>uint(lit.Val), l.hi>>uint(lit.Val))
		}
	case cir.Rem:
		// x % c for constant c > 0: result in (-c, c); [0, c) when x >= 0.
		if lit, isLit := e.R.(*cir.IntLit); isLit && lit.Val > 0 {
			if l.ok && l.lo >= 0 {
				return known(0, min64(l.hi, lit.Val-1))
			}
			if l.ok {
				return known(-(lit.Val - 1), lit.Val-1)
			}
		}
	case cir.And:
		// x & c for constant c >= 0 is always in [0, c] (two's complement).
		if lit, isLit := e.R.(*cir.IntLit); isLit && lit.Val >= 0 {
			return known(0, lit.Val)
		}
		if lit, isLit := e.L.(*cir.IntLit); isLit && lit.Val >= 0 {
			return known(0, lit.Val)
		}
	case cir.Div:
		if lit, isLit := e.R.(*cir.IntLit); isLit && lit.Val > 0 && l.ok && l.lo >= 0 {
			return known(l.lo/lit.Val, l.hi/lit.Val)
		}
	}
	return unknown
}

// loopVarInterval computes the value range of a counted loop's induction
// variable, honoring the step (the last attained value may be below
// hi-1).
func loopVarInterval(l *cir.Loop, env map[string]interval) interval {
	lo := evalInterval(l.Lo, env)
	hi := evalInterval(l.Hi, env)
	if !lo.ok || !hi.ok || l.Step <= 0 {
		return unknown
	}
	last := hi.hi - 1
	if lo.lo == lo.hi && hi.lo == hi.hi && hi.hi > lo.lo {
		// Exact constant bounds: the last attained value is lo + k*step.
		n := (hi.hi - 1 - lo.lo) / l.Step
		last = lo.lo + n*l.Step
	}
	if last < lo.lo {
		last = lo.lo
	}
	return known(lo.lo, last)
}

type boundsChecker struct {
	k        *cir.Kernel
	lengths  map[string]int64
	findings Findings
	reported map[string]bool
}

// maxSeedMagnitude bounds the element ranges imported from interface
// facts so downstream interval arithmetic (products of two data values)
// cannot overflow int64.
const maxSeedMagnitude = int64(1) << 31

// checkBounds runs pass 2 over the kernel.
func checkBounds(k *cir.Kernel) Findings {
	c := &boundsChecker{k: k, lengths: map[string]int64{}, reported: map[string]bool{}}
	env := map[string]interval{}
	for _, p := range k.Params {
		if p.IsArray && p.Length > 0 {
			// Per-task length; task-relative subscripts are checked
			// against it. Absolute subscripts contain the task index,
			// whose interval is unknown, and are skipped.
			c.lengths[p.Name] = int64(p.Length)
		}
		if p.IsArray && p.ValKnown && p.Elem.IsInteger() &&
			p.ValLo >= float64(-maxSeedMagnitude) && p.ValHi <= float64(maxSeedMagnitude) {
			env[p.Name+"[]"] = known(int64(p.ValLo), int64(p.ValHi))
		}
	}
	for _, g := range k.Globals {
		c.lengths[g.Name] = int64(len(g.Data))
		if iv, ok := globalElemRange(g); ok {
			env[g.Name+"[]"] = iv
		}
	}
	c.block(k.Body, env, "")
	c.findings.Sort()
	return c.findings
}

func (c *boundsChecker) report(sev Severity, loopID, where, detail string) {
	key := where + "|" + detail
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.findings = append(c.findings, Finding{
		Rule: RuleArrayBounds, Sev: sev, Kernel: c.k.Name, LoopID: loopID, Where: where, Detail: detail,
	})
}

func (c *boundsChecker) block(b cir.Block, env map[string]interval, loopID string) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Decl:
			c.expr(s.Init, env, loopID)
			if s.Init != nil {
				if iv := evalInterval(s.Init, env); iv.ok {
					env[s.Name] = iv
				} else {
					delete(env, s.Name)
				}
			} else {
				env[s.Name] = known(0, 0) // JVM zero default
			}
		case *cir.ArrDecl:
			c.lengths[s.Name] = int64(s.Len)
		case *cir.Assign:
			c.expr(s.RHS, env, loopID)
			switch lhs := s.LHS.(type) {
			case *cir.VarRef:
				if iv := evalInterval(s.RHS, env); iv.ok {
					// Conservative widening: re-assignment in branches or
					// loops may cycle, so keep the union with any prior
					// interval.
					if prev, ok := env[lhs.Name]; ok {
						iv = known(min64(prev.lo, iv.lo), max64(prev.hi, iv.hi))
					}
					env[lhs.Name] = iv
				} else {
					delete(env, lhs.Name)
				}
			case *cir.Index:
				c.checkIndex(lhs, env, loopID)
				c.expr(lhs.Idx, env, loopID)
			}
		case *cir.If:
			c.expr(s.Cond, env, loopID)
			thenEnv := cloneEnv(env)
			refineCond(s.Cond, true, thenEnv)
			c.block(s.Then, thenEnv, loopID)
			elseEnv := cloneEnv(env)
			refineCond(s.Cond, false, elseEnv)
			c.block(s.Else, elseEnv, loopID)
			// Either branch may have reassigned a scalar: its pre-branch
			// interval no longer holds.
			killAssigned(s.Then, env)
			killAssigned(s.Else, env)
		case *cir.Loop:
			c.expr(s.Lo, env, loopID)
			c.expr(s.Hi, env, loopID)
			bodyEnv := cloneEnv(env)
			// Scalars the body reassigns can carry values across
			// iterations (recurrences); a single walk cannot bound them,
			// so their intervals are dropped before checking the body.
			killAssigned(s.Body, bodyEnv)
			bodyEnv[s.Var] = loopVarInterval(s, env)
			c.block(s.Body, bodyEnv, s.ID)
			killAssigned(s.Body, env)
		case *cir.While:
			c.expr(s.Cond, env, loopID)
			// A while body may run any number of times: scalars it writes
			// lose their intervals for the check inside it.
			c.block(s.Body, map[string]interval{}, loopID)
			killAssigned(s.Body, env)
		case *cir.Return:
			c.expr(s.Val, env, loopID)
		}
	}
}

func (c *boundsChecker) expr(e cir.Expr, env map[string]interval, loopID string) {
	switch e := e.(type) {
	case nil, *cir.IntLit, *cir.FloatLit, *cir.VarRef:
	case *cir.Index:
		c.checkIndex(e, env, loopID)
		c.expr(e.Idx, env, loopID)
	case *cir.Unary:
		c.expr(e.X, env, loopID)
	case *cir.Binary:
		c.expr(e.L, env, loopID)
		c.expr(e.R, env, loopID)
	case *cir.Cast:
		c.expr(e.X, env, loopID)
	case *cir.Cond:
		c.expr(e.C, env, loopID)
		c.expr(e.T, env, loopID)
		c.expr(e.F, env, loopID)
	case *cir.Call:
		for _, a := range e.Args {
			c.expr(a, env, loopID)
		}
	}
}

func (c *boundsChecker) checkIndex(ix *cir.Index, env map[string]interval, loopID string) {
	length, ok := c.lengths[ix.Arr]
	if !ok || length <= 0 {
		return
	}
	iv := evalInterval(ix.Idx, env)
	if !iv.ok {
		return
	}
	where := fmt.Sprintf("%s[%s]", ix.Arr, cir.ExprString(ix.Idx))
	switch {
	case iv.hi < 0 || iv.lo >= length:
		c.report(SevError, loopID, where,
			fmt.Sprintf("subscript range [%d, %d] is entirely outside [0, %d)", iv.lo, iv.hi, length))
	case iv.lo < 0 || iv.hi >= length:
		c.report(SevWarn, loopID, where,
			fmt.Sprintf("subscript range [%d, %d] may leave [0, %d)", iv.lo, iv.hi, length))
	}
}

// killAssigned removes from env every scalar assigned (or re-declared)
// anywhere in the block's subtree.
func killAssigned(b cir.Block, env map[string]interval) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Decl:
			delete(env, s.Name)
		case *cir.Assign:
			if vr, ok := s.LHS.(*cir.VarRef); ok {
				delete(env, vr.Name)
			}
		case *cir.If:
			killAssigned(s.Then, env)
			killAssigned(s.Else, env)
		case *cir.Loop:
			delete(env, s.Var)
			killAssigned(s.Body, env)
		case *cir.While:
			killAssigned(s.Body, env)
		}
	}
}

// globalElemRange computes the exact value range of a constant global
// array (lookup tables are the canonical subscript source).
func globalElemRange(g cir.Global) (interval, bool) {
	if !g.Elem.IsInteger() || len(g.Data) == 0 {
		return unknown, false
	}
	lo, hi := g.Data[0].AsInt(), g.Data[0].AsInt()
	for _, v := range g.Data[1:] {
		lo = min64(lo, v.AsInt())
		hi = max64(hi, v.AsInt())
	}
	return known(lo, hi), true
}

// refineCond narrows env with the facts implied by cond evaluating to
// branch. Only scalar comparisons against a known interval refine;
// anything else leaves env untouched (conservative).
func refineCond(e cir.Expr, branch bool, env map[string]interval) {
	b, ok := e.(*cir.Binary)
	if !ok {
		return
	}
	switch b.Op {
	case cir.LAnd:
		if branch { // !(a && b) implies nothing about a or b alone
			refineCond(b.L, true, env)
			refineCond(b.R, true, env)
		}
		return
	case cir.LOr:
		if !branch {
			refineCond(b.L, false, env)
			refineCond(b.R, false, env)
		}
		return
	}
	if !b.Op.IsCompare() {
		return
	}
	op := b.Op
	if !branch {
		op = negateCmp(op)
	}
	refineCmp(b.L, op, b.R, env)
	refineCmp(b.R, flipCmp(op), b.L, env)
}

func negateCmp(op cir.BinOp) cir.BinOp {
	switch op {
	case cir.Lt:
		return cir.Ge
	case cir.Le:
		return cir.Gt
	case cir.Gt:
		return cir.Le
	case cir.Ge:
		return cir.Lt
	case cir.Eq:
		return cir.Ne
	case cir.Ne:
		return cir.Eq
	}
	return op
}

func flipCmp(op cir.BinOp) cir.BinOp {
	switch op {
	case cir.Lt:
		return cir.Gt
	case cir.Gt:
		return cir.Lt
	case cir.Le:
		return cir.Ge
	case cir.Ge:
		return cir.Le
	}
	return op // Eq and Ne are symmetric
}

// refineCmp narrows x's interval given that `x op bound` holds.
func refineCmp(x cir.Expr, op cir.BinOp, bound cir.Expr, env map[string]interval) {
	vr, ok := x.(*cir.VarRef)
	if !ok {
		return
	}
	cur, ok := env[vr.Name]
	if !ok {
		return
	}
	bv := evalInterval(bound, env)
	if !bv.ok {
		return
	}
	switch op {
	case cir.Lt:
		cur.hi = min64(cur.hi, bv.hi-1)
	case cir.Le:
		cur.hi = min64(cur.hi, bv.hi)
	case cir.Gt:
		cur.lo = max64(cur.lo, bv.lo+1)
	case cir.Ge:
		cur.lo = max64(cur.lo, bv.lo)
	case cir.Eq:
		cur.lo = max64(cur.lo, bv.lo)
		cur.hi = min64(cur.hi, bv.hi)
	default: // Ne carves a hole, not an interval
		return
	}
	if cur.lo > cur.hi {
		// The branch is statically unreachable; dropping the interval
		// skips (rather than mis-reports) anything inside it.
		delete(env, vr.Name)
		return
	}
	env[vr.Name] = cur
}

func cloneEnv(env map[string]interval) map[string]interval {
	out := make(map[string]interval, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
