package lint

import (
	"strings"
	"testing"

	"s2fa/internal/cir"
)

// IR-building helpers for hand-written kernels.

func intLit(v int64) *cir.IntLit { return &cir.IntLit{K: cir.Int, Val: v} }
func ref(n string) *cir.VarRef   { return &cir.VarRef{K: cir.Int, Name: n} }

func counted(id, v string, trip int64, body cir.Block) *cir.Loop {
	return &cir.Loop{ID: id, Var: v, Lo: intLit(0), Hi: intLit(trip), Step: 1, Body: body}
}

// kern wraps body in the canonical compiler-inserted task loop L0.
func kern(body cir.Block, params ...cir.Param) *cir.Kernel {
	task := &cir.Loop{
		ID: "L0", Var: "_task",
		Lo: intLit(0), Hi: &cir.VarRef{K: cir.Int, Name: "N"}, Step: 1,
		Body: body,
	}
	return &cir.Kernel{Name: "t", Params: params, Body: cir.Block{task}, TaskLoopID: "L0"}
}

func inArr(name string, n int) cir.Param {
	return cir.Param{Name: name, Elem: cir.Int, IsArray: true, Length: n}
}

func outArr(name string, n int) cir.Param {
	return cir.Param{Name: name, Elem: cir.Int, IsArray: true, Length: n, IsOutput: true}
}

// TestRules drives every rule through a positive (finding present) and a
// negative (finding absent) kernel. Cases with non-nil directive maps run
// only the legality pass (Checker.Directives); the rest run the full
// Lint entry point.
func TestRules(t *testing.T) {
	cases := []struct {
		name   string
		kernel func() *cir.Kernel
		loops  map[string]cir.LoopOpt // non-nil: run Directives instead of Lint
		bws    map[string]int
		rule   string
		sev    Severity
		want   bool // expect at least one finding under rule
	}{
		// Pass 1: dataflow.
		{
			name: "undefined-variable/read",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "x", K: cir.Int, Init: ref("ghost")},
				})
			},
			rule: RuleUndefinedVar, sev: SevError, want: true,
		},
		{
			name: "undefined-variable/store-to-unknown-array",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Assign{LHS: &cir.Index{K: cir.Int, Arr: "ghost", Idx: intLit(0)}, RHS: intLit(1)},
				})
			},
			rule: RuleUndefinedVar, sev: SevError, want: true,
		},
		{
			name: "undefined-variable/negative",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "x", K: cir.Int, Init: intLit(1)},
					&cir.Decl{Name: "y", K: cir.Int, Init: ref("x")},
				})
			},
			rule: RuleUndefinedVar, want: false,
		},
		{
			name: "uninitialized-read/scalar",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "x", K: cir.Int}, // JVM zero default
					&cir.Decl{Name: "y", K: cir.Int, Init: ref("x")},
				})
			},
			rule: RuleUninitRead, sev: SevWarn, want: true,
		},
		{
			name: "uninitialized-read/output-array",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "y", K: cir.Int, Init: &cir.Index{K: cir.Int, Arr: "out", Idx: intLit(0)}},
				}, outArr("out", 4))
			},
			rule: RuleUninitRead, sev: SevWarn, want: true,
		},
		{
			name: "uninitialized-read/negative-input-array",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "y", K: cir.Int, Init: &cir.Index{K: cir.Int, Arr: "in", Idx: intLit(0)}},
				}, inArr("in", 4))
			},
			rule: RuleUninitRead, want: false,
		},
		{
			name: "uninitialized-read/negative-if-both-arms-assign",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "x", K: cir.Int},
					&cir.If{
						Cond: &cir.Binary{K: cir.Bool, Op: cir.Lt, L: ref("_task"), R: intLit(1)},
						Then: cir.Block{&cir.Assign{LHS: ref("x"), RHS: intLit(1)}},
						Else: cir.Block{&cir.Assign{LHS: ref("x"), RHS: intLit(2)}},
					},
					&cir.Decl{Name: "y", K: cir.Int, Init: ref("x")},
				})
			},
			rule: RuleUninitRead, want: false,
		},
		{
			name: "uninitialized-read/one-armed-if-still-warns",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "x", K: cir.Int},
					&cir.If{
						Cond: &cir.Binary{K: cir.Bool, Op: cir.Lt, L: ref("_task"), R: intLit(1)},
						Then: cir.Block{&cir.Assign{LHS: ref("x"), RHS: intLit(1)}},
					},
					&cir.Decl{Name: "y", K: cir.Int, Init: ref("x")},
				})
			},
			rule: RuleUninitRead, sev: SevWarn, want: true,
		},

		// Pass 2: bounds.
		{
			name: "array-bounds/provably-out",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.ArrDecl{Name: "a", Elem: cir.Int, Len: 4},
					&cir.Assign{LHS: &cir.Index{K: cir.Int, Arr: "a", Idx: intLit(10)}, RHS: intLit(0)},
				})
			},
			rule: RuleArrayBounds, sev: SevError, want: true,
		},
		{
			name: "array-bounds/possible-overrun-warns",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.ArrDecl{Name: "a", Elem: cir.Int, Len: 4},
					counted("L1", "i", 8, cir.Block{
						&cir.Assign{LHS: &cir.Index{K: cir.Int, Arr: "a", Idx: ref("i")}, RHS: intLit(0)},
					}),
				})
			},
			rule: RuleArrayBounds, sev: SevWarn, want: true,
		},
		{
			name: "array-bounds/negative-in-range",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.ArrDecl{Name: "a", Elem: cir.Int, Len: 8},
					counted("L1", "i", 8, cir.Block{
						&cir.Assign{LHS: &cir.Index{K: cir.Int, Arr: "a", Idx: ref("i")}, RHS: intLit(0)},
					}),
				})
			},
			rule: RuleArrayBounds, want: false,
		},
		{
			name: "array-bounds/negative-branch-reassignment",
			// A scalar reassigned in a branch must lose its interval: only
			// the post-branch read matters, and it is unknown, not [0,0].
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.ArrDecl{Name: "a", Elem: cir.Int, Len: 4},
					&cir.Decl{Name: "s", K: cir.Int, Init: intLit(0)},
					&cir.If{
						Cond: &cir.Binary{K: cir.Bool, Op: cir.Lt, L: ref("_task"), R: intLit(1)},
						Then: cir.Block{&cir.Assign{LHS: ref("s"), RHS: intLit(100)}},
					},
					&cir.Assign{LHS: &cir.Index{K: cir.Int, Arr: "a", Idx: ref("s")}, RHS: intLit(0)},
				})
			},
			rule: RuleArrayBounds, want: false,
		},

		// Pass 3 via pass 4: parallel races.
		{
			name: "parallel-race/non-reduction-recurrence",
			kernel: func() *cir.Kernel {
				k := kern(cir.Block{
					&cir.Decl{Name: "s", K: cir.Int, Init: intLit(1)},
					counted("L1", "i", 8, cir.Block{
						&cir.Assign{LHS: ref("s"), RHS: &cir.Binary{K: cir.Int, Op: cir.Mul, L: ref("s"), R: intLit(2)}},
					}),
				})
				return k
			},
			loops: map[string]cir.LoopOpt{"L1": {Parallel: 2}},
			rule:  RuleParallelRace, sev: SevWarn, want: true,
		},
		{
			name: "parallel-race/negative-additive-reduction",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "s", K: cir.Int, Init: intLit(0)},
					counted("L1", "i", 8, cir.Block{
						&cir.Assign{LHS: ref("s"), RHS: &cir.Binary{K: cir.Int, Op: cir.Add,
							L: ref("s"), R: &cir.Index{K: cir.Int, Arr: "in", Idx: ref("i")}}},
					}),
				}, inArr("in", 8))
			},
			loops: map[string]cir.LoopOpt{"L1": {Parallel: 2}},
			rule:  RuleParallelRace, want: false,
		},
		{
			name: "parallel-race/negative-factor-1",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "s", K: cir.Int, Init: intLit(1)},
					counted("L1", "i", 8, cir.Block{
						&cir.Assign{LHS: ref("s"), RHS: &cir.Binary{K: cir.Int, Op: cir.Mul, L: ref("s"), R: intLit(2)}},
					}),
				})
			},
			loops: map[string]cir.LoopOpt{"L1": {Parallel: 1}},
			rule:  RuleParallelRace, want: false,
		},

		// Pass 4: factors.
		{
			name:   "illegal-factor/parallel-exceeds-trip",
			kernel: func() *cir.Kernel { return kern(cir.Block{counted("L1", "i", 8, nil)}) },
			loops:  map[string]cir.LoopOpt{"L1": {Parallel: 16}},
			rule:   RuleIllegalFactor, sev: SevError, want: true,
		},
		{
			name:   "illegal-factor/negative-tile",
			kernel: func() *cir.Kernel { return kern(cir.Block{counted("L1", "i", 8, nil)}) },
			loops:  map[string]cir.LoopOpt{"L1": {Tile: -1}},
			rule:   RuleIllegalFactor, sev: SevError, want: true,
		},
		{
			name:   "illegal-factor/negative-in-range",
			kernel: func() *cir.Kernel { return kern(cir.Block{counted("L1", "i", 8, nil)}) },
			loops:  map[string]cir.LoopOpt{"L1": {Parallel: 4}},
			rule:   RuleIllegalFactor, want: false,
		},
		{
			name:   "factor-eq-trip/full-unroll-warns",
			kernel: func() *cir.Kernel { return kern(cir.Block{counted("L1", "i", 8, nil)}) },
			loops:  map[string]cir.LoopOpt{"L1": {Parallel: 8}},
			rule:   RuleFactorEqTrip, sev: SevWarn, want: true,
		},

		// Pass 4: flatten.
		{
			name: "flatten-variable-trip/while-in-subtree",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					counted("L1", "i", 4, cir.Block{
						&cir.While{Cond: &cir.Binary{K: cir.Bool, Op: cir.Lt, L: ref("i"), R: intLit(2)}},
					}),
				})
			},
			loops: map[string]cir.LoopOpt{"L1": {Pipeline: cir.PipeFlatten}},
			rule:  RuleFlattenVarTrip, sev: SevError, want: true,
		},
		{
			name: "flatten-variable-trip/symbolic-sub-loop-bound",
			kernel: func() *cir.Kernel {
				sub := counted("L2", "j", 4, nil)
				sub.Hi = ref("_task") // runtime bound: trip unknown
				return kern(cir.Block{counted("L1", "i", 4, cir.Block{sub})})
			},
			loops: map[string]cir.LoopOpt{"L1": {Pipeline: cir.PipeFlatten}},
			rule:  RuleFlattenVarTrip, sev: SevError, want: true,
		},
		{
			name: "flatten-variable-trip/negative-constant-nest",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{counted("L1", "i", 4, cir.Block{counted("L2", "j", 4, nil)})})
			},
			loops: map[string]cir.LoopOpt{"L1": {Pipeline: cir.PipeFlatten}},
			rule:  RuleFlattenVarTrip, want: false,
		},
		{
			name: "flatten-carried/sub-loop-recurrence",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "s", K: cir.Int, Init: intLit(1)},
					counted("L1", "i", 4, cir.Block{
						counted("L2", "j", 4, cir.Block{
							&cir.Assign{LHS: ref("s"), RHS: &cir.Binary{K: cir.Int, Op: cir.Mul, L: ref("s"), R: intLit(2)}},
						}),
					}),
				})
			},
			loops: map[string]cir.LoopOpt{"L1": {Pipeline: cir.PipeFlatten}},
			rule:  RuleFlattenCarried, sev: SevWarn, want: true,
		},
		{
			name:   "flatten-leaf/warns",
			kernel: func() *cir.Kernel { return kern(cir.Block{counted("L1", "i", 8, nil)}) },
			loops:  map[string]cir.LoopOpt{"L1": {Pipeline: cir.PipeFlatten}},
			rule:   RuleFlattenLeaf, sev: SevWarn, want: true,
		},

		// Pass 4: bit-widths.
		{
			name:   "illegal-bitwidth/not-power-of-two",
			kernel: func() *cir.Kernel { return kern(nil, inArr("in", 4)) },
			loops:  map[string]cir.LoopOpt{},
			bws:    map[string]int{"in": 48},
			rule:   RuleIllegalWidth, sev: SevError, want: true,
		},
		{
			name:   "illegal-bitwidth/too-narrow",
			kernel: func() *cir.Kernel { return kern(nil, inArr("in", 4)) },
			loops:  map[string]cir.LoopOpt{},
			bws:    map[string]int{"in": 4},
			rule:   RuleIllegalWidth, sev: SevError, want: true,
		},
		{
			name: "illegal-bitwidth/scalar-target",
			kernel: func() *cir.Kernel {
				return kern(nil, cir.Param{Name: "alpha", Elem: cir.Double})
			},
			loops: map[string]cir.LoopOpt{},
			bws:   map[string]int{"alpha": 64},
			rule:  RuleIllegalWidth, sev: SevError, want: true,
		},
		{
			name:   "illegal-bitwidth/negative-legal",
			kernel: func() *cir.Kernel { return kern(nil, inArr("in", 4)) },
			loops:  map[string]cir.LoopOpt{},
			bws:    map[string]int{"in": 64},
			rule:   RuleIllegalWidth, want: false,
		},
		{
			name: "bitwidth-narrowing/below-element",
			kernel: func() *cir.Kernel {
				return kern(nil, cir.Param{Name: "xs", Elem: cir.Double, IsArray: true, Length: 4})
			},
			loops: map[string]cir.LoopOpt{},
			bws:   map[string]int{"xs": 32},
			rule:  RuleNarrowWidth, sev: SevWarn, want: true,
		},

		// Pass 4: unknown targets.
		{
			name:   "unknown-loop",
			kernel: func() *cir.Kernel { return kern(nil) },
			loops:  map[string]cir.LoopOpt{"L99": {Parallel: 2}},
			rule:   RuleUnknownLoop, sev: SevError, want: true,
		},
		{
			name:   "unknown-param",
			kernel: func() *cir.Kernel { return kern(nil) },
			loops:  map[string]cir.LoopOpt{},
			bws:    map[string]int{"ghost": 64},
			rule:   RuleUnknownParam, sev: SevError, want: true,
		},

		// Pass 5: structure.
		{
			name: "duplicate-loop-id",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{counted("L1", "i", 4, nil), counted("L1", "j", 4, nil)})
			},
			rule: RuleDupLoopID, sev: SevError, want: true,
		},
		{
			name: "duplicate-local",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "x", K: cir.Int, Init: intLit(1)},
					&cir.Decl{Name: "x", K: cir.Int, Init: intLit(2)},
				})
			},
			rule: RuleDupLocal, sev: SevError, want: true,
		},
		{
			name: "shadowed-local",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					&cir.Decl{Name: "x", K: cir.Int, Init: intLit(1)},
					counted("L1", "i", 4, cir.Block{
						&cir.Decl{Name: "x", K: cir.Int, Init: intLit(2)},
					}),
				})
			},
			rule: RuleShadowedLocal, sev: SevWarn, want: true,
		},
		{
			name: "loop-var-write",
			kernel: func() *cir.Kernel {
				return kern(cir.Block{
					counted("L1", "i", 4, cir.Block{
						&cir.Assign{LHS: ref("i"), RHS: intLit(0)},
					}),
				})
			},
			rule: RuleLoopVarWrite, sev: SevError, want: true,
		},
		{
			name: "bad-step",
			kernel: func() *cir.Kernel {
				l := counted("L1", "i", 4, nil)
				l.Step = 0
				return kern(cir.Block{l})
			},
			rule: RuleBadStep, sev: SevError, want: true,
		},
		{
			name: "missing-task-loop",
			kernel: func() *cir.Kernel {
				k := kern(nil)
				k.TaskLoopID = "L9"
				return k
			},
			rule: RuleMissingTask, sev: SevError, want: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := tc.kernel()
			var fs Findings
			if tc.loops != nil || tc.bws != nil {
				fs = NewChecker(k).Directives(tc.loops, tc.bws)
			} else {
				fs = Lint(k)
			}
			hits := fs.ByRule(tc.rule)
			if tc.want && len(hits) == 0 {
				t.Fatalf("rule %s not reported; findings:\n%s", tc.rule, fs)
			}
			if !tc.want && len(hits) > 0 {
				t.Fatalf("rule %s reported unexpectedly:\n%s", tc.rule, hits)
			}
			for _, f := range hits {
				if f.Sev != tc.sev {
					t.Errorf("rule %s severity = %s, want %s", tc.rule, f.Sev, tc.sev)
				}
				if f.Kernel != k.Name {
					t.Errorf("finding kernel = %q, want %q", f.Kernel, k.Name)
				}
			}
		})
	}
}

func TestFindingsHelpers(t *testing.T) {
	fs := Findings{
		{Rule: "b-warn", Sev: SevWarn, Detail: "w"},
		{Rule: "a-error", Sev: SevError, Detail: "e"},
		{Rule: "a-error", Sev: SevError, Detail: "d"},
	}
	fs.Sort()
	if fs[0].Sev != SevError || fs[len(fs)-1].Sev != SevWarn {
		t.Errorf("Sort did not order errors first: %v", fs)
	}
	if fs[0].Detail != "d" {
		t.Errorf("Sort not stable by detail within rule: %v", fs)
	}
	if !fs.HasErrors() || len(fs.Errors()) != 2 || len(fs.Warnings()) != 1 {
		t.Errorf("error/warning split wrong: %d/%d", len(fs.Errors()), len(fs.Warnings()))
	}
	if Findings(nil).HasErrors() {
		t.Error("empty findings claim errors")
	}
	if got := Findings(nil).String(); got != "no findings" {
		t.Errorf("empty String() = %q", got)
	}
	f := Finding{Rule: "r", Sev: SevError, Kernel: "k", LoopID: "L1", Where: "x", Detail: "boom"}
	s := f.String()
	for _, part := range []string{"error[r]", "k", "loop L1", "at x", "boom"} {
		if !strings.Contains(s, part) {
			t.Errorf("Finding.String() = %q missing %q", s, part)
		}
	}
}

func TestReductionForm(t *testing.T) {
	add := func(l, r cir.Expr) *cir.Binary { return &cir.Binary{K: cir.Int, Op: cir.Add, L: l, R: r} }
	idx := func(i cir.Expr) *cir.Index { return &cir.Index{K: cir.Int, Arr: "in", Idx: i} }

	l := counted("L1", "i", 8, cir.Block{
		&cir.Assign{LHS: ref("s"), RHS: add(ref("s"), idx(ref("i")))},
	})
	if acc, _, ok := ReductionForm(l); !ok || acc != "s" {
		t.Errorf("canonical reduction not recognized: acc=%q ok=%v", acc, ok)
	}

	// Commuted operand order also matches.
	l2 := counted("L1", "i", 8, cir.Block{
		&cir.Assign{LHS: ref("s"), RHS: add(idx(ref("i")), ref("s"))},
	})
	if _, _, ok := ReductionForm(l2); !ok {
		t.Error("commuted reduction not recognized")
	}

	// A second read of the accumulator disqualifies it.
	l3 := counted("L1", "i", 8, cir.Block{
		&cir.Assign{LHS: ref("s"), RHS: add(ref("s"), idx(ref("i")))},
		&cir.Assign{LHS: &cir.Index{K: cir.Int, Arr: "out", Idx: intLit(0)}, RHS: ref("s")},
	})
	if _, _, ok := ReductionForm(l3); ok {
		t.Error("reduction with extra accumulator use accepted")
	}

	// Multiplicative recurrences are not additive reductions.
	l4 := counted("L1", "i", 8, cir.Block{
		&cir.Assign{LHS: ref("s"), RHS: &cir.Binary{K: cir.Int, Op: cir.Mul, L: ref("s"), R: intLit(2)}},
	})
	if _, _, ok := ReductionForm(l4); ok {
		t.Error("multiplicative recurrence accepted as reduction")
	}
}
