package lint

import (
	"fmt"

	"s2fa/internal/cir"
)

// Pass 1: def-before-use / uninitialized-read dataflow.
//
// The analysis walks the structured AST keeping two facts per scalar:
// declared (the name exists) and definitely-assigned (every path to this
// program point wrote it). Reading an undeclared name is an error — the
// generated C would not compile, so this is a b2c/merlin compiler bug.
// Reading a declared-but-unassigned scalar is a warning only: cir.Decl
// without an initializer zero-initializes, matching JVM local semantics,
// so the code is well-defined but the read of a default value is almost
// always unintended.
//
// Join rules are the classic definite-assignment ones: an if defines a
// name only when both arms do; a loop body's definitions escape only when
// the loop provably executes (constant trip count >= 1). Arrays track a
// coarser fact — "some element was stored" — because per-element
// tracking needs the pass-2 interval machinery and reads of the JVM zero
// default are legal anyway.

type dfState struct {
	declared map[string]bool // scalar names in scope (incl. loop vars)
	assigned map[string]bool // definitely-assigned scalars
	arrays   map[string]bool // array names in scope (params, globals, locals)
	written  map[string]bool // arrays with at least one definite store
}

func (st *dfState) clone() *dfState {
	out := &dfState{
		declared: map[string]bool{},
		assigned: map[string]bool{},
		arrays:   map[string]bool{},
		written:  map[string]bool{},
	}
	for k := range st.declared {
		out.declared[k] = true
	}
	for k := range st.assigned {
		out.assigned[k] = true
	}
	for k := range st.arrays {
		out.arrays[k] = true
	}
	for k := range st.written {
		out.written[k] = true
	}
	return out
}

// mergeBranches intersects the definite facts of two successor states
// into st; declarations union (JVM locals are method-scoped, and the
// printer hoists nothing, so a name declared in one arm must still be
// flagged if read in the other — handled by `declared` being unioned but
// `assigned` intersected).
func (st *dfState) mergeBranches(a, b *dfState) {
	for k := range a.declared {
		st.declared[k] = true
	}
	for k := range b.declared {
		st.declared[k] = true
	}
	for k := range a.arrays {
		st.arrays[k] = true
	}
	for k := range b.arrays {
		st.arrays[k] = true
	}
	for k := range a.assigned {
		if b.assigned[k] {
			st.assigned[k] = true
		}
	}
	for k := range a.written {
		if b.written[k] {
			st.written[k] = true
		}
	}
}

type dfChecker struct {
	k        *cir.Kernel
	findings Findings
	reported map[string]bool // (rule, name) dedup
}

func (c *dfChecker) report(rule string, sev Severity, loopID, where, detail string) {
	key := rule + "|" + where + "|" + detail
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.findings = append(c.findings, Finding{
		Rule: rule, Sev: sev, Kernel: c.k.Name, LoopID: loopID, Where: where, Detail: detail,
	})
}

// checkDataflow runs pass 1 over the kernel.
func checkDataflow(k *cir.Kernel) Findings {
	c := &dfChecker{k: k, reported: map[string]bool{}}
	st := &dfState{
		declared: map[string]bool{"N": true}, // implicit batch-size parameter
		assigned: map[string]bool{"N": true},
		arrays:   map[string]bool{},
		written:  map[string]bool{},
	}
	for _, p := range k.Params {
		if p.IsArray {
			st.arrays[p.Name] = true
			if !p.IsOutput {
				st.written[p.Name] = true // host-filled input buffer
			}
		} else {
			st.declared[p.Name] = true
			st.assigned[p.Name] = true
		}
	}
	for _, g := range k.Globals {
		st.arrays[g.Name] = true
		st.written[g.Name] = true // constant data
	}
	c.block(k.Body, st, "")
	return c.findings
}

func (c *dfChecker) block(b cir.Block, st *dfState, loopID string) {
	for _, s := range b {
		switch s := s.(type) {
		case *cir.Decl:
			if s.Init != nil {
				c.expr(s.Init, st, loopID)
			}
			st.declared[s.Name] = true
			if s.Init != nil {
				st.assigned[s.Name] = true
			}
		case *cir.ArrDecl:
			st.arrays[s.Name] = true
		case *cir.Assign:
			c.expr(s.RHS, st, loopID)
			switch lhs := s.LHS.(type) {
			case *cir.VarRef:
				if !st.declared[lhs.Name] {
					c.report(RuleUndefinedVar, SevError, loopID, lhs.Name,
						fmt.Sprintf("assignment to undeclared scalar %q", lhs.Name))
				}
				st.assigned[lhs.Name] = true
			case *cir.Index:
				c.expr(lhs.Idx, st, loopID)
				if !st.arrays[lhs.Arr] {
					c.report(RuleUndefinedVar, SevError, loopID, lhs.Arr,
						fmt.Sprintf("store to undeclared array %q", lhs.Arr))
				}
				st.written[lhs.Arr] = true
			}
		case *cir.If:
			c.expr(s.Cond, st, loopID)
			thenSt, elseSt := st.clone(), st.clone()
			c.block(s.Then, thenSt, loopID)
			c.block(s.Else, elseSt, loopID)
			st.mergeBranches(thenSt, elseSt)
		case *cir.Loop:
			c.expr(s.Lo, st, loopID)
			c.expr(s.Hi, st, loopID)
			prevDecl, prevAsg := st.declared[s.Var], st.assigned[s.Var]
			bodySt := st.clone()
			bodySt.declared[s.Var] = true
			bodySt.assigned[s.Var] = true
			c.block(s.Body, bodySt, s.ID)
			if s.TripCount() >= 1 || s.ID == c.k.TaskLoopID {
				// The loop provably executes (constant trip, or the task
				// loop which runs once per batch element): its definite
				// assignments survive. The loop variable does not — it
				// scopes to the body (restore any shadowed outer fact).
				delete(bodySt.assigned, s.Var)
				delete(bodySt.declared, s.Var)
				if prevDecl {
					bodySt.declared[s.Var] = true
				}
				if prevAsg {
					bodySt.assigned[s.Var] = true
				}
				*st = *bodySt
			} else {
				// Zero-trip possible: only declarations escape (the C
				// printer emits them in the enclosing scope semantics of
				// the JVM method frame).
				st.mergeBranches(bodySt, st.clone())
			}
		case *cir.While:
			c.expr(s.Cond, st, loopID)
			bodySt := st.clone()
			c.block(s.Body, bodySt, loopID)
			st.mergeBranches(bodySt, st.clone())
		case *cir.Return:
			if s.Val != nil {
				c.expr(s.Val, st, loopID)
			}
		}
	}
}

func (c *dfChecker) expr(e cir.Expr, st *dfState, loopID string) {
	switch e := e.(type) {
	case nil, *cir.IntLit, *cir.FloatLit:
	case *cir.VarRef:
		switch {
		case !st.declared[e.Name] && !st.arrays[e.Name]:
			c.report(RuleUndefinedVar, SevError, loopID, e.Name,
				fmt.Sprintf("read of undeclared variable %q", e.Name))
		case st.declared[e.Name] && !st.assigned[e.Name]:
			c.report(RuleUninitRead, SevWarn, loopID, e.Name,
				fmt.Sprintf("%q may be read before assignment (reads the JVM zero default)", e.Name))
		}
	case *cir.Index:
		c.expr(e.Idx, st, loopID)
		if !st.arrays[e.Arr] {
			c.report(RuleUndefinedVar, SevError, loopID, e.Arr,
				fmt.Sprintf("read of undeclared array %q", e.Arr))
		} else if !st.written[e.Arr] {
			c.report(RuleUninitRead, SevWarn, loopID, e.Arr,
				fmt.Sprintf("array %q may be read before any element is stored", e.Arr))
		}
	case *cir.Unary:
		c.expr(e.X, st, loopID)
	case *cir.Binary:
		c.expr(e.L, st, loopID)
		c.expr(e.R, st, loopID)
	case *cir.Cast:
		c.expr(e.X, st, loopID)
	case *cir.Cond:
		c.expr(e.C, st, loopID)
		c.expr(e.T, st, loopID)
		c.expr(e.F, st, loopID)
	case *cir.Call:
		for _, a := range e.Args {
			c.expr(a, st, loopID)
		}
	}
}
