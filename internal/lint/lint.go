// Package lint is the kernel static verifier: a multi-pass analyzer over
// the cir HLS-C IR that catches compiler bugs at generation time and
// rejects statically-illegal design points before they cost virtual
// synthesis minutes.
//
// S2FA's design-space identification (paper §4.1) is fundamentally a
// static-analysis step — loop trip counts, affine strides, and
// loop-carried dependences decide which Merlin transformations are even
// legal. This package makes those legality facts first-class:
//
//	pass 1  def-before-use / uninitialized-read dataflow  (dataflow.go)
//	pass 2  array bounds via interval analysis            (bounds.go)
//	pass 3  parallel-safety race detection                (races.go)
//	pass 4  transform/pragma legality                     (legality.go)
//	pass 5  post-transform structural invariants          (structure.go)
//	pass 6  access-pattern gather advisory                (access.go)
//
// Findings carry a rule ID, a severity, and a location. Severities follow
// a strict contract that the cross-check tests enforce: an Error is
// raised only for configurations the downstream pipeline provably rejects
// too (merlin.Annotate error or an HLS-infeasible verdict), so pruning on
// lint errors can never discard a feasible design. Everything that merely
// degrades quality — a carried dependence that serializes the requested
// parallel lanes, a bit-width below the element's value range — is a
// Warn.
//
// Consumers: internal/b2c gates code generation on lint errors,
// internal/merlin backs its CheckTile/CheckUnroll/CheckFlatten
// precondition API with pass 4, internal/space and internal/dse prune the
// design space with it, and cmd/s2fa exposes everything via -lint.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"s2fa/internal/cir"
	"s2fa/internal/depend"
)

// Severity classifies a finding.
type Severity uint8

// Severity levels. SevError marks configurations the toolchain must
// reject; SevWarn marks legal-but-suspect ones.
const (
	SevWarn Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Rule identifiers. Each lint pass reports under a fixed set of IDs so
// consumers (merlin's typed errors, the DSE pruner, golden tests) can
// dispatch on them.
const (
	RuleUndefinedVar   = "undefined-variable"    // pass 1, error
	RuleUninitRead     = "uninitialized-read"    // pass 1, warn (JVM zero-init)
	RuleArrayBounds    = "array-bounds"          // pass 2, error if provable, warn if possible
	RuleParallelRace   = "parallel-race"         // pass 3, warn (HLS serializes, never rejects)
	RuleIllegalFactor  = "illegal-factor"        // pass 4, error (> trip or negative)
	RuleFactorEqTrip   = "factor-eq-trip"        // pass 4, warn (legal but fully unrolls)
	RuleFlattenVarTrip = "flatten-variable-trip" // pass 4, error (matches HLS infeasibility)
	RuleFlattenCarried = "flatten-carried"       // pass 4, warn
	RuleFlattenLeaf    = "flatten-leaf"          // pass 4, warn (no sub-loops to unroll)
	RuleIllegalWidth   = "illegal-bitwidth"      // pass 4, error (mirrors merlin validation)
	RuleNarrowWidth    = "bitwidth-narrowing"    // pass 4, warn
	RuleUnknownLoop    = "unknown-loop"          // pass 4, error
	RuleUnknownParam   = "unknown-param"         // pass 4, error
	RuleDupLoopID      = "duplicate-loop-id"     // pass 5, error
	RuleDupLocal       = "duplicate-local"       // pass 5, error
	RuleShadowedLocal  = "shadowed-local"        // pass 5, warn
	RuleLoopVarWrite   = "loop-var-write"        // pass 5, error
	RuleBadStep        = "bad-step"              // pass 5, error
	RuleMissingTask    = "missing-task-loop"     // pass 5, error
	RuleGatherAccess   = "gather-access"         // pass 6, warn (sourced advisory)
)

// Finding is one diagnostic produced by a lint pass.
type Finding struct {
	Rule   string
	Sev    Severity
	Kernel string
	LoopID string // owning loop, if any
	Where  string // statement/expression context, if any
	Detail string // human rationale in the paper's §3.3/§4.1 language
}

func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]", f.Sev, f.Rule)
	if f.Kernel != "" {
		fmt.Fprintf(&b, " %s", f.Kernel)
	}
	if f.LoopID != "" {
		fmt.Fprintf(&b, " loop %s", f.LoopID)
	}
	if f.Where != "" {
		fmt.Fprintf(&b, " at %s", f.Where)
	}
	fmt.Fprintf(&b, ": %s", f.Detail)
	return b.String()
}

// Findings is an ordered diagnostic list.
type Findings []Finding

// HasErrors reports whether any finding has error severity.
func (fs Findings) HasErrors() bool {
	for _, f := range fs {
		if f.Sev == SevError {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity findings.
func (fs Findings) Errors() Findings {
	var out Findings
	for _, f := range fs {
		if f.Sev == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Warnings returns only the warn-severity findings.
func (fs Findings) Warnings() Findings {
	var out Findings
	for _, f := range fs {
		if f.Sev != SevError {
			out = append(out, f)
		}
	}
	return out
}

// ByRule returns the findings reported under the given rule ID.
func (fs Findings) ByRule(rule string) Findings {
	var out Findings
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// Sort orders findings deterministically: errors first, then by rule,
// loop, location, and detail.
func (fs Findings) Sort() {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Sev != b.Sev {
			return a.Sev > b.Sev // errors (1) before warnings (0)
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.LoopID != b.LoopID {
			return a.LoopID < b.LoopID
		}
		if a.Where != b.Where {
			return a.Where < b.Where
		}
		return a.Detail < b.Detail
	})
}

func (fs Findings) String() string {
	if len(fs) == 0 {
		return "no findings"
	}
	lines := make([]string, len(fs))
	for i, f := range fs {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// Lint runs every pass over the kernel as-is: dataflow, bounds, and
// structure examine the AST; races and legality examine the directives
// already annotated on it (Loop.Opt, Param.BitWidth). This is what the
// b2c gate and the post-transform invariant checks call.
func Lint(k *cir.Kernel) Findings {
	c := NewChecker(k)
	var fs Findings
	fs = append(fs, CheckStructure(k)...)
	fs = append(fs, checkDataflow(k)...)
	fs = append(fs, checkBounds(k)...)
	fs = append(fs, c.Directives(annotatedLoops(k), annotatedWidths(k))...)
	fs = append(fs, checkAccess(k)...)
	fs.Sort()
	return fs
}

// PostTransform runs the passes that stay meaningful after Merlin has
// materialized directives into the AST: structural invariants, dataflow,
// and bounds. The legality pass is skipped deliberately — materialization
// consumes factor directives but leaves the annotations in place as a
// record (an unrolled loop keeps Opt.Parallel while its residual trip
// count shrinks), so re-checking them against the rewritten loops would
// reject records of legal, already-applied transforms.
func PostTransform(k *cir.Kernel) Findings {
	var fs Findings
	fs = append(fs, CheckStructure(k)...)
	fs = append(fs, checkDataflow(k)...)
	fs = append(fs, checkBounds(k)...)
	fs.Sort()
	return fs
}

// annotatedLoops collects the non-zero loop directives already attached to
// the kernel.
func annotatedLoops(k *cir.Kernel) map[string]cir.LoopOpt {
	out := map[string]cir.LoopOpt{}
	for _, l := range k.Loops() {
		if l.Opt != (cir.LoopOpt{}) {
			out[l.ID] = l.Opt
		}
	}
	return out
}

// annotatedWidths collects the non-default interface widths already
// attached to the kernel.
func annotatedWidths(k *cir.Kernel) map[string]int {
	out := map[string]int{}
	for _, p := range k.Params {
		if p.BitWidth != 0 {
			out[p.Name] = p.BitWidth
		}
	}
	return out
}

// Checker caches the kernel analysis (loop tree, trip counts, carried
// dependences) so the per-point legality pass is cheap enough to run on
// every DSE proposal.
type Checker struct {
	k    *cir.Kernel
	info *cir.KernelInfo
	dep  *depend.Analysis
	// flattenVarTrip maps loop ID to the offending sub-loop description
	// when flatten is statically impossible (a sub-loop without a constant
	// trip count — counted with symbolic bounds, or a general while).
	flattenVarTrip map[string]string
	// flattenCarried maps loop ID to a description of carried sub-loops
	// that flatten would unroll into a serial dependence chain.
	flattenCarried map[string]string
	// race maps loop ID to a description of the carried dependence that is
	// not a recognized reduction form, if any.
	race map[string]string
}

// NewChecker analyzes k once and returns a reusable legality checker.
func NewChecker(k *cir.Kernel) *Checker {
	c := &Checker{
		k:              k,
		info:           cir.Analyze(k),
		dep:            depend.Analyze(k),
		flattenVarTrip: map[string]string{},
		flattenCarried: map[string]string{},
		race:           map[string]string{},
	}
	for _, li := range c.info.All {
		if d := raceDetail(c.dep, li.Loop.ID); d != "" {
			c.race[li.Loop.ID] = d
		}
	}
	for _, li := range c.info.All {
		if d := subLoopVarTrip(li); d != "" {
			c.flattenVarTrip[li.Loop.ID] = d
		} else if d := whileInSubtree(li.Loop.Body); d != "" {
			c.flattenVarTrip[li.Loop.ID] = d
		}
		if d := c.subLoopCarried(li); d != "" {
			c.flattenCarried[li.Loop.ID] = d
		}
	}
	return c
}

// Info exposes the cached kernel analysis.
func (c *Checker) Info() *cir.KernelInfo { return c.info }

// Depend exposes the cached exact dependence analysis so downstream
// consumers (HLS estimation, DSE pruning, -explain) reuse one computation
// per kernel.
func (c *Checker) Depend() *depend.Analysis { return c.dep }

// subLoopVarTrip reports a descendant counted loop without a constant
// trip count, which makes flatten (full sub-loop unrolling, paper §4.1)
// statically impossible.
func subLoopVarTrip(li *cir.LoopInfo) string {
	for _, ch := range li.Children {
		if ch.Trip <= 0 {
			return fmt.Sprintf("sub-loop %s has a non-constant trip count", ch.Loop.ID)
		}
		if d := subLoopVarTrip(ch); d != "" {
			return d
		}
	}
	return ""
}

// whileInSubtree reports a general while loop anywhere in the block: a
// variable-trip region no unroller can flatten.
func whileInSubtree(b cir.Block) string {
	var found string
	var walk func(b cir.Block)
	walk = func(b cir.Block) {
		for _, s := range b {
			if found != "" {
				return
			}
			switch s := s.(type) {
			case *cir.While:
				found = fmt.Sprintf("subtree contains a variable-trip while loop (cond %s)", cir.ExprString(s.Cond))
			case *cir.Loop:
				walk(s.Body)
			case *cir.If:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(b)
	return found
}

// subLoopCarried reports a descendant loop whose carried dependence is
// not a recognized reduction form: flattening unrolls it into a serial
// chain, so the fine-grained pipeline gains little.
func (c *Checker) subLoopCarried(li *cir.LoopInfo) string {
	for _, ch := range li.Children {
		if d, ok := c.race[ch.Loop.ID]; ok {
			return fmt.Sprintf("sub-loop %s: %s", ch.Loop.ID, d)
		}
		if d := c.subLoopCarried(ch); d != "" {
			return d
		}
	}
	return ""
}
